#include "core/partitioner.h"

#include <cassert>
#include <optional>

#include "common/thread_pool.h"

namespace dhnsw {

Result<Partitioning> PartitionDataset(const VectorSet& base, const MetaHnsw& meta,
                                      const PartitionerOptions& options) {
  if (base.empty()) return Status::InvalidArgument("partitioner: empty base set");
  if (base.dim() != meta.dim()) {
    return Status::InvalidArgument("partitioner: dim mismatch with meta-HNSW");
  }
  const uint32_t num_parts = meta.num_partitions();

  Partitioning out;
  out.assignment.resize(base.size());

  // Phase 1: classify. Each base vector goes to its nearest representative.
  // (Representatives classify to themselves: distance 0 to their own node.)
  {
    auto classify = [&](size_t i) { out.assignment[i] = meta.RouteOne(base[i]); };
    if (options.num_threads > 1) {
      ThreadPool pool(options.num_threads);
      pool.ParallelFor(base.size(), classify);
    } else {
      for (size_t i = 0; i < base.size(); ++i) classify(i);
    }
  }

  // Phase 2: bucket members per partition (partition order == meta id order).
  std::vector<std::vector<uint32_t>> members(num_parts);
  for (size_t i = 0; i < base.size(); ++i) {
    assert(out.assignment[i] < num_parts);
    members[out.assignment[i]].push_back(static_cast<uint32_t>(i));
  }

  // Phase 3: build one sub-HNSW per partition. Build is independent across
  // partitions, so this parallelizes trivially.
  std::vector<std::optional<Cluster>> built(num_parts);
  auto build_one = [&](size_t p) {
    HnswOptions sub_options = options.sub_hnsw;
    // Decorrelate level assignment across partitions while staying
    // deterministic for a fixed top-level seed.
    sub_options.seed = options.sub_hnsw.seed * 0x9e3779b97f4a7c15ULL + p;
    HnswIndex index(base.dim(), sub_options);
    for (uint32_t gid : members[p]) index.Add(base[gid]);
    built[p].emplace(static_cast<uint32_t>(p), std::move(index), std::move(members[p]));
  };
  if (options.num_threads > 1) {
    ThreadPool pool(options.num_threads);
    pool.ParallelFor(num_parts, build_one);
  } else {
    for (uint32_t p = 0; p < num_parts; ++p) build_one(p);
  }

  out.clusters.reserve(num_parts);
  for (uint32_t p = 0; p < num_parts; ++p) {
    out.clusters.push_back(std::move(*built[p]));
  }
  return out;
}

}  // namespace dhnsw
