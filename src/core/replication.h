// Replicated memory pool: failure detection, epoch-fenced failover, and
// online re-replication.
//
// The paper's memory pool is a single point of failure: every sub-HNSW
// cluster lives in exactly one registered region. This module provisions the
// same serialized region bytes onto `factor` memory nodes per shard slot and
// runs the control plane a real deployment would host in its connection
// manager:
//
//   * directory    — per-slot replica lists (node, rkey, health) plus the
//                    current primary and the slot's fence epoch. Compute
//                    nodes resolve every load/insert through PrimaryRoute()
//                    and stamp the epoch into the work request.
//   * health       — a SimClock-driven probe loop (Tick()) reads 8 bytes
//                    from every non-dead replica; consecutive misses walk a
//                    replica alive -> suspected -> dead. Compute nodes feed
//                    the same miss counters through ReportUnreachable() when
//                    a load fails, so detection also rides the data path.
//   * failover     — marking a primary dead revokes its rkey on the fabric
//                    (see Fabric::RevokeRegion: a stale primary that comes
//                    back cannot serve reads or absorb writes), promotes the
//                    next live replica, and bumps the slot epoch; survivors'
//                    regions are re-fenced at the new epoch so every compute
//                    node is forced through a directory refresh.
//   * re-replication — Rereplicate() restores the replication factor by
//                    streaming the region from a live replica onto a fresh
//                    node (chunked, CRC-checked, doorbell-batched) and
//                    atomically admitting it at the next epoch.
//
// Thread safety: every public method locks one mutex; the manager owns its
// own SimClock and QueuePair (the control plane's network time is charged to
// the manager, never to a compute instance's latency accounting), so search
// traces stay deterministic with or without probes running.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "core/memory_node.h"
#include "rdma/fabric.h"
#include "rdma/queue_pair.h"
#include "telemetry/trace.h"

namespace dhnsw {

/// Replication knobs. The default (factor 1) disables the whole subsystem;
/// single-replica deployments keep byte-identical behaviour and timing.
struct ReplicationOptions {
  /// Copies of every shard region, including the original. 1 = disabled.
  uint32_t factor = 1;
  /// Simulated time one Tick() advances before probing (probe period).
  uint64_t probe_interval_ns = 1'000'000;
  /// Consecutive misses that walk an alive replica to suspected.
  uint32_t suspect_after_misses = 2;
  /// Consecutive misses that declare a replica dead (>= suspect_after).
  uint32_t dead_after_misses = 3;
  /// Chunk size for re-replication streaming (doorbell-batched READ/WRITE).
  uint64_t rereplicate_chunk_bytes = 64 * 1024;
  /// Chunks coalesced per doorbell ring while streaming.
  uint32_t rereplicate_doorbell = 16;

  bool enabled() const noexcept { return factor > 1; }
};

enum class ReplicaHealth : uint8_t { kAlive = 0, kSuspected = 1, kDead = 2 };

std::string_view ReplicaHealthName(ReplicaHealth health) noexcept;

class ReplicaManager {
 public:
  ReplicaManager(rdma::Fabric* fabric, ReplicationOptions options);

  /// Builds the replica sets from the provisioned deployment: replica 0 of
  /// each slot is the region `handle` names; replicas 1..factor-1 are cloned
  /// onto fresh fabric nodes with the chunked streamer. All replica regions
  /// are then fenced at epoch 1.
  Status ProvisionReplicas(const MemoryNodeHandle& handle);

  /// How a compute node addresses one slot right now.
  struct Route {
    rdma::RKey rkey = 0;
    uint64_t epoch = 0;
    uint32_t replica = 0;  ///< replica index within the slot
    /// False when every replica of the slot is dead; the route then points
    /// at the (revoked) last primary so accesses fail fenced rather than
    /// dereferencing rkey 0.
    bool alive = false;
  };

  Route PrimaryRoute(uint32_t slot) const;
  /// Every non-dead replica of `slot` (primary first) — the write fan-out set.
  std::vector<Route> WriteRoutes(uint32_t slot) const;

  size_t num_slots() const;
  uint32_t factor() const noexcept { return options_.factor; }
  const ReplicationOptions& options() const noexcept { return options_; }
  uint64_t SlotEpoch(uint32_t slot) const;
  ReplicaHealth health(uint32_t slot, uint32_t replica) const;
  /// Replicas of `slot` currently alive (not suspected, not dead).
  uint32_t AliveCount(uint32_t slot) const;

  /// One probe round over every non-dead replica of every slot, after
  /// advancing the manager clock by the probe interval. Returns the number
  /// of health-state transitions (suspected/dead/recovered).
  uint32_t Tick();

  /// Data-path failure report: a compute node failed to reach `slot`'s
  /// primary. Counts one miss, then confirm-probes the primary: a successful
  /// probe clears the miss count (the failure was stale-epoch or transient —
  /// the caller should refresh its route and retry); a failed probe counts a
  /// second miss. Crossing dead_after_misses kills the primary and fails the
  /// slot over. Returns true when a failover happened.
  bool ReportUnreachable(uint32_t slot);

  /// Write-path failure report against a specific (usually secondary)
  /// replica: one miss + thresholds, no confirm probe.
  void ReportReplicaFailure(uint32_t slot, uint32_t replica);

  /// Restores the replication factor of `slot`: streams the region from the
  /// current primary onto a fresh node (chunked + CRC-checked + doorbell-
  /// batched), verifies the copy, then atomically admits it at the next
  /// epoch. Serving continues throughout — the new epoch only forces compute
  /// nodes through one directory refresh. Assumes no concurrent writers to
  /// the slot during the copy (searches are fine; see DESIGN.md §9).
  Status Rereplicate(uint32_t slot);
  /// Rereplicate() for every slot below the configured factor.
  Status RereplicateAll();

  /// Human-readable per-node health/epoch table (`dhnsw_cli topology`).
  std::string TopologyText() const;

  /// --- control-plane tracing ("replication.*" spans) ---
  void EnableTracing(size_t capacity) { trace_buffer_.Reserve(capacity); }
  void ClearTrace() noexcept { trace_buffer_.Clear(); }
  const telemetry::TraceBuffer& trace() const noexcept { return trace_buffer_; }

  const SimClock& clock() const noexcept { return clock_; }

 private:
  struct Replica {
    rdma::NodeId node = 0;
    rdma::RKey rkey = 0;
    ReplicaHealth health = ReplicaHealth::kAlive;
    uint32_t misses = 0;  ///< consecutive probe/report misses
  };
  struct Slot {
    std::vector<Replica> replicas;
    uint32_t primary = 0;
    uint64_t epoch = 0;
  };

  /// True when the 8-byte probe read at region offset 0 succeeds.
  bool ProbeLocked(const Replica& replica);
  /// Applies miss thresholds; may suspect or kill (and fail over) `replica`.
  /// Returns the number of state transitions.
  uint32_t ApplyThresholdsLocked(uint32_t slot, uint32_t replica);
  void MarkDeadLocked(uint32_t slot, uint32_t replica);
  void FailoverLocked(uint32_t slot);
  /// Streams `size` bytes from src to dst in CRC-checked chunks coalesced
  /// into doorbell rings, then re-reads dst and verifies every chunk CRC.
  Status StreamRegionLocked(rdma::RKey src, rdma::RKey dst, uint64_t size);
  void PublishGaugesLocked() const;

  rdma::Fabric* fabric_;
  ReplicationOptions options_;
  mutable std::mutex mutex_;
  SimClock clock_;
  rdma::QueuePair qp_;
  std::vector<Slot> slots_;
  telemetry::TraceBuffer trace_buffer_;
  telemetry::TraceContext trace_ctx_;
};

}  // namespace dhnsw
