#include "core/memory_node.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <memory>
#include <stdexcept>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "index/distance.h"
#include "serialize/overflow.h"
#include "telemetry/metrics.h"

namespace dhnsw {

MemoryNode::MemoryNode(rdma::Fabric* fabric, std::string name)
    : fabric_(fabric), node_(fabric->AddNode(std::move(name))) {}

Status MemoryNode::Provision(const MetaHnsw& meta, const std::vector<Cluster>& clusters,
                             const LayoutConfig& config, uint64_t layout_version,
                             uint32_t num_shards, size_t encode_threads) {
  if (provisioned()) return Status::InvalidArgument("MemoryNode already provisioned");
  if (clusters.empty()) return Status::InvalidArgument("Provision: no clusters");
  WallTimer provision_timer;

  const ProductQuantizer* pq = meta.quantizer();
  if (pq != nullptr && pq->dim() != meta.dim()) {
    return Status::InvalidArgument("Provision: quantizer dim mismatch");
  }

  std::unique_ptr<ThreadPool> pool;
  if (encode_threads > 1 && clusters.size() > 1) {
    pool = std::make_unique<ThreadPool>(encode_threads);
  }
  // Per-cluster fan-out with the pool's exception contract surfaced as a
  // Status (a throwing encode task must fail the provision, not vanish).
  const auto for_each_cluster = [&](const char* stage,
                                    const std::function<void(size_t)>& fn) -> Status {
    try {
      if (pool) {
        pool->ParallelFor(clusters.size(), fn);
      } else {
        for (size_t c = 0; c < clusters.size(); ++c) fn(c);
      }
    } catch (const std::exception& e) {
      return Status::Internal(std::string("Provision ") + stage + " failed: " + e.what());
    }
    return Status::Ok();
  };

  // Analyze: exact blob sizes (PlanClusterSize mirrors EncodeCluster
  // byte-for-byte) and covering radii, one cluster per task. The layout is
  // planned from these predictions so the encode below can stream each blob
  // straight into its final offset instead of holding every blob in memory.
  const std::vector<uint8_t> meta_blob = meta.ToBlob();
  const uint32_t code_m = pq != nullptr ? pq->m() : 0;
  const Metric metric = meta.index().options().metric;
  std::vector<uint64_t> blob_sizes(clusters.size());
  std::vector<uint64_t> head_sizes(clusters.size(), 0);
  std::vector<float> radii(clusters.size(), 0.0f);
  DHNSW_RETURN_IF_ERROR(for_each_cluster("analyze", [&](size_t c) {
    const ClusterSizePlan size_plan = PlanClusterSize(clusters[c], code_m);
    blob_sizes[c] = size_plan.total_size;
    head_sizes[c] = size_plan.pq_head_size;
    // Covering radius (L2 only): max distance from the partition's
    // representative to any member. Powers compute-side adaptive pruning.
    if (metric == Metric::kL2) {
      const std::span<const float> center = meta.index().vector(c);
      float max_sq = 0.0f;
      for (uint32_t local = 0; local < clusters[c].index.size(); ++local) {
        max_sq = std::max(max_sq, L2Sq(center, clusters[c].index.vector(local)));
      }
      radii[c] = std::sqrt(max_sq);
    }
  }));

  const uint32_t dim = meta.dim();
  const uint32_t record_size = static_cast<uint32_t>(OverflowRecordSize(dim));
  DHNSW_ASSIGN_OR_RETURN(
      plan_, PlanLayout(dim, metric, record_size, meta_blob.size(), blob_sizes, config,
                        num_shards));
  plan_.header.layout_version = layout_version;
  for (uint32_t c = 0; c < head_sizes.size(); ++c) {
    plan_.entries[c].pq_head_size = head_sizes[c];
    plan_.entries[c].radius = radii[c];
  }

  // Register one region per shard; slot 0 lives on this node, further slots
  // each get a fresh memory instance on the fabric.
  std::vector<rdma::RKey> shard_rkeys;
  std::vector<rdma::NodeId> shard_nodes;
  for (uint32_t s = 0; s < plan_.num_shards(); ++s) {
    const rdma::NodeId owner =
        s == 0 ? node_ : fabric_->AddNode("memory-node-shard-" + std::to_string(s));
    DHNSW_ASSIGN_OR_RETURN(const rdma::RKey rkey,
                           fabric_->RegisterMemory(owner, plan_.shard_sizes[s]));
    shard_rkeys.push_back(rkey);
    shard_nodes.push_back(owner);
  }

  // Resolve every shard's host span up-front (sequentially): the encode
  // workers below then only touch disjoint [blob_offset, blob_offset+size)
  // windows of these spans.
  std::vector<std::span<uint8_t>> shard_mem(plan_.num_shards());
  for (uint32_t s = 0; s < plan_.num_shards(); ++s) {
    rdma::MemoryRegion* shard = fabric_->FindRegion(shard_rkeys[s]);
    if (shard == nullptr) return Status::Internal("freshly registered region not found");
    shard_mem[s] = shard->host_span();
  }
  std::span<uint8_t> mem = shard_mem[0];

  // Region header + metadata table (primary only).
  EncodeRegionHeader(plan_.header, mem.subspan(0, RegionHeader::kEncodedSize));
  for (uint32_t c = 0; c < plan_.entries.size(); ++c) {
    EncodeClusterMeta(plan_.entries[c],
                      mem.subspan(plan_.TableEntryOffset(c), ClusterMeta::kEncodedSize));
  }

  // meta-HNSW blob (primary only).
  std::memcpy(mem.data() + plan_.header.meta_blob_offset, meta_blob.data(), meta_blob.size());

  // Encode + store, streamed: each cluster's blob (with its PQ codes section
  // when the meta carries a codebook — residuals against the partition's
  // representative, re-encoded here so compaction, which replays Provision
  // with the decoded meta, preserves PQ for free) is built and copied to its
  // planned offset, then freed. Peak memory is one blob per worker.
  DHNSW_RETURN_IF_ERROR(for_each_cluster("encode", [&](size_t c) {
    std::vector<uint8_t> blob;
    uint64_t head = 0;
    if (pq == nullptr) {
      blob = EncodeCluster(clusters[c]);
    } else {
      const std::span<const float> center = meta.index().vector(c);
      const uint32_t count = clusters[c].index.size();
      std::vector<uint8_t> codes(static_cast<size_t>(count) * pq->m());
      std::vector<float> residual(pq->dim());
      for (uint32_t local = 0; local < count; ++local) {
        const std::span<const float> v = clusters[c].index.vector(local);
        for (uint32_t d = 0; d < pq->dim(); ++d) residual[d] = v[d] - center[d];
        pq->Encode(residual,
                   std::span<uint8_t>(codes).subspan(
                       static_cast<size_t>(local) * pq->m(), pq->m()));
      }
      ClusterPqExtensions ext;
      ext.codes = codes;
      ext.code_m = pq->m();
      blob = EncodeCluster(clusters[c], ext, &head);
    }
    if (blob.size() != blob_sizes[c] || head != head_sizes[c]) {
      throw std::logic_error("cluster " + std::to_string(c) +
                             " encoded size disagrees with PlanClusterSize");
    }
    std::memcpy(shard_mem[plan_.entries[c].node_slot].data() + plan_.entries[c].blob_offset,
                blob.data(), blob.size());
  }));

  handle_ = MemoryNodeHandle{node_, shard_rkeys[0], plan_.total_size,
                             std::move(shard_rkeys), std::move(shard_nodes)};

  // Provisioning is control-plane: per-call registry lookups are fine.
  telemetry::MetricRegistry& registry = telemetry::DefaultRegistry();
  registry.GetCounter("dhnsw_memory_provisions_total")->Add(1);
  registry.GetCounter("dhnsw_memory_clusters_provisioned_total")->Add(clusters.size());
  registry.GetGauge("dhnsw_memory_provisioned_bytes")->Add(static_cast<int64_t>(plan_.total_size));
  registry.GetHistogram("dhnsw_memory_provision_us")
      ->Record(static_cast<uint64_t>(provision_timer.elapsed_us()));
  return Status::Ok();
}

Result<ClusterMeta> MemoryNode::InspectClusterMeta(uint32_t cluster) const {
  if (!provisioned()) return Status::Unavailable("memory node not provisioned");
  if (cluster >= plan_.entries.size()) return Status::InvalidArgument("bad cluster id");
  const rdma::MemoryRegion* region = fabric_->FindRegion(handle_.rkey);
  if (region == nullptr) return Status::Internal("region vanished");
  return DecodeClusterMeta(
      region->host_span().subspan(plan_.TableEntryOffset(cluster), ClusterMeta::kEncodedSize));
}

}  // namespace dhnsw
