#include "core/compute_node.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstring>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "index/distance.h"
#include "telemetry/metrics.h"

namespace dhnsw {

namespace {

// Compute-layer instruments (shared by every instance in the process; tests
// read deltas). Resolved once — the per-batch record path is relaxed atomics
// only, preserving the allocation-free hot path.
struct ComputeInstruments {
  telemetry::Counter* batches;
  telemetry::Counter* queries;
  telemetry::Counter* cluster_loads;
  telemetry::Counter* bytes_loaded;
  telemetry::Counter* cache_hit_clusters;
  telemetry::Counter* cache_miss_clusters;
  telemetry::Counter* pruned_loads;
  telemetry::Counter* pruned_searches;
  telemetry::Counter* retries;
  telemetry::Counter* failed_loads;
  telemetry::Counter* backoff_ns;
  telemetry::Counter* inserts;
  telemetry::Counter* removes;
  telemetry::Counter* insert_rejects;
  telemetry::Counter* failovers;
  telemetry::Counter* replica_insert_acks;
  telemetry::Counter* replica_faa_acks;
  telemetry::Counter* prefetch_waves;
  telemetry::Counter* pipeline_overlap_ns;
  telemetry::Counter* rerank_candidates;
  telemetry::Counter* rerank_reads;
  telemetry::Counter* rerank_bytes;
  telemetry::Counter* rerank_fallbacks;
  telemetry::ShardedCounter* sub_searches;
  telemetry::Histogram* batch_round_trips;
  telemetry::Histogram* batch_network_ns;
};

const ComputeInstruments& Compute() {
  static const ComputeInstruments instruments = [] {
    telemetry::MetricRegistry& r = telemetry::DefaultRegistry();
    return ComputeInstruments{
        r.GetCounter("dhnsw_compute_batches_total"),
        r.GetCounter("dhnsw_compute_queries_total"),
        r.GetCounter("dhnsw_compute_cluster_loads_total"),
        r.GetCounter("dhnsw_compute_bytes_loaded_total"),
        r.GetCounter("dhnsw_compute_cache_hit_clusters_total"),
        r.GetCounter("dhnsw_compute_cache_miss_clusters_total"),
        r.GetCounter("dhnsw_compute_pruned_loads_total"),
        r.GetCounter("dhnsw_compute_pruned_searches_total"),
        r.GetCounter("dhnsw_compute_retries_total"),
        r.GetCounter("dhnsw_compute_failed_loads_total"),
        r.GetCounter("dhnsw_compute_backoff_ns_total"),
        r.GetCounter("dhnsw_compute_inserts_total"),
        r.GetCounter("dhnsw_compute_removes_total"),
        r.GetCounter("dhnsw_compute_insert_rejects_total"),
        r.GetCounter("dhnsw_compute_failovers_total"),
        r.GetCounter("dhnsw_replication_insert_acks_total"),
        r.GetCounter("dhnsw_replication_faa_acks_total"),
        r.GetCounter("dhnsw_compute_prefetch_waves_total"),
        r.GetCounter("dhnsw_compute_pipeline_overlap_ns_total"),
        r.GetCounter("dhnsw_compute_rerank_candidates_total"),
        r.GetCounter("dhnsw_compute_rerank_reads_total"),
        r.GetCounter("dhnsw_compute_rerank_bytes_total"),
        r.GetCounter("dhnsw_compute_rerank_fallbacks_total"),
        r.GetShardedCounter("dhnsw_compute_sub_searches_total"),
        r.GetHistogram("dhnsw_compute_batch_round_trips"),
        r.GetHistogram("dhnsw_compute_batch_network_ns"),
    };
  }();
  return instruments;
}

}  // namespace

std::string_view EngineModeName(EngineMode mode) noexcept {
  switch (mode) {
    case EngineMode::kNaive: return "naive";
    case EngineMode::kNoDoorbell: return "no-doorbell";
    case EngineMode::kFull: return "d-hnsw";
  }
  return "?";
}

std::string_view PayloadModeName(PayloadMode mode) noexcept {
  switch (mode) {
    case PayloadMode::kRaw: return "raw";
    case PayloadMode::kPq: return "pq";
    case PayloadMode::kPqRerank: return "pq+rerank";
  }
  return "?";
}

BatchBreakdown& BatchBreakdown::operator+=(const BatchBreakdown& rhs) noexcept {
  network_us += rhs.network_us;
  meta_us += rhs.meta_us;
  sub_us += rhs.sub_us;
  deserialize_us += rhs.deserialize_us;
  round_trips += rhs.round_trips;
  bytes_read += rhs.bytes_read;
  clusters_loaded += rhs.clusters_loaded;
  cache_hits += rhs.cache_hits;
  pruned_searches += rhs.pruned_searches;
  pruned_loads += rhs.pruned_loads;
  retries += rhs.retries;
  failed_loads += rhs.failed_loads;
  backoff_ns += rhs.backoff_ns;
  failovers += rhs.failovers;
  pipeline_overlap_ns += rhs.pipeline_overlap_ns;
  rerank_candidates += rhs.rerank_candidates;
  rerank_reads += rhs.rerank_reads;
  rerank_bytes += rhs.rerank_bytes;
  rerank_fallbacks += rhs.rerank_fallbacks;
  num_queries += rhs.num_queries;
  return *this;
}

ComputeNode::ComputeNode(rdma::Fabric* fabric, MemoryNodeHandle memory,
                         ComputeOptions options, std::string name)
    : fabric_(fabric),
      memory_(memory),
      options_(options),
      name_(std::move(name)),
      qp_(fabric, &clock_, options.doorbell_batch),
      cache_(options.mode == EngineMode::kNaive
                 ? 0
                 : (options.cache_budget_bytes > 0 ? options.cache_budget_bytes
                                                   : options.cache_capacity)) {
  fabric_->AddNode(name_);
  if (!fabric_->transport().is_sim()) {
    real_backoff_ = true;
    // Spans from this instance carry the backend name; the simulator leaves
    // the label empty so its trace JSONL stays byte-identical.
    trace_buffer_.set_transport_label(std::string(fabric_->transport().name()));
  }
  telemetry::MetricRegistry& registry = telemetry::DefaultRegistry();
  cache_.AttachTelemetry(registry.GetCounter("dhnsw_compute_cache_ref_hits_total"),
                         registry.GetCounter("dhnsw_compute_cache_ref_misses_total"),
                         registry.GetGauge("dhnsw_compute_cache_entries"));
  trace_ctx_.buffer = &trace_buffer_;
  trace_ctx_.clock = &clock_;
  qp_.set_trace(&trace_ctx_);
}

ComputeNode::SlotRoute ComputeNode::RouteFor(uint32_t slot) const {
  if (replication_ != nullptr) {
    const ReplicaManager::Route route = replication_->PrimaryRoute(slot);
    if (route.rkey != 0) return SlotRoute{route.rkey, route.epoch};
  }
  // No manager (or it knows nothing about this slot): the provisioning-time
  // handle, posted unfenced — the single-replica seed behaviour.
  return SlotRoute{memory_.rkey_for_slot(slot), 0};
}

namespace {
/// Failures that indicate the target replica (not the payload) is the
/// problem: these — and only these — feed the failure detector. Decode/CRC
/// errors stay wire-damage retries, and kFenced surfaces as kUnavailable, so
/// a stale-epoch miss also lands here (the confirm probe then clears it).
bool IsReachabilityFailure(const Status& status) noexcept {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded;
}
}  // namespace

bool ComputeNode::NoteSlotFailure(uint32_t slot, BatchBreakdown* breakdown) {
  if (replication_ == nullptr) return false;
  if (!replication_->ReportUnreachable(slot)) return false;
  Compute().failovers->Add(1);
  if (breakdown != nullptr) ++breakdown->failovers;
  trace_ctx_.Event("replication.failover_observed", telemetry::TraceEvent::kNoQuery, slot,
                   replication_->SlotEpoch(slot));
  return true;
}

void ComputeNode::ReportLoadFailures(
    const std::vector<std::pair<uint32_t, Status>>& read_errors, BatchBreakdown* breakdown) {
  if (replication_ == nullptr || read_errors.empty()) return;
  // One report per slot per round: N failed READs against one dead replica
  // are one observation, not N strikes.
  std::vector<uint32_t> reported;
  for (const auto& [cluster, status] : read_errors) {
    if (!IsReachabilityFailure(status)) continue;
    const uint32_t slot = table_[cluster].node_slot;
    if (std::find(reported.begin(), reported.end(), slot) != reported.end()) continue;
    reported.push_back(slot);
    NoteSlotFailure(slot, breakdown);
  }
}

Status ComputeNode::Connect() {
  // Each bootstrap step is retried under options_.retry: read + decode as a
  // unit, so a CRC mismatch on damaged bytes triggers a fresh read.
  // 1. Region header.
  DHNSW_RETURN_IF_ERROR(WithRetry([this] {
    const SlotRoute route = RouteFor(0);
    AlignedBuffer header_buf(RegionHeader::kEncodedSize, 64);
    Status read = qp_.Read(route.rkey, 0, header_buf.span(), route.epoch);
    if (!read.ok()) {
      if (IsReachabilityFailure(read)) NoteSlotFailure(0, nullptr);
      return read;
    }
    DHNSW_ASSIGN_OR_RETURN(header_, DecodeRegionHeader(header_buf.span()));
    return Status::Ok();
  }));

  // 2. meta-HNSW blob — cached in this instance for the engine's lifetime
  //    (paper §3.1: "we cache the lightweight meta-HNSW in the compute pool").
  DHNSW_RETURN_IF_ERROR(WithRetry([this] {
    const SlotRoute route = RouteFor(0);
    AlignedBuffer meta_buf(header_.meta_blob_size, 64);
    Status read = qp_.Read(route.rkey, header_.meta_blob_offset, meta_buf.span(), route.epoch);
    if (!read.ok()) {
      if (IsReachabilityFailure(read)) NoteSlotFailure(0, nullptr);
      return read;
    }
    DHNSW_ASSIGN_OR_RETURN(MetaHnsw meta, MetaHnsw::FromBlob(meta_buf.span()));
    meta.set_ef_route(options_.ef_meta);
    meta_.emplace(std::move(meta));
    return Status::Ok();
  }));

  // 3. Cluster offset table (paper §3.2: offsets "are cached in all compute
  //    instances after the sub-HNSW clusters are written to the memory pool").
  DHNSW_RETURN_IF_ERROR(WithRetry([this] { return RefreshMetadata(); }));

  // 4. PQ preconditions: compressed payloads need the shared codebook (it
  //    rides in the meta blob) and per-cluster prefix lengths from the table.
  //    Failing here — not mid-batch — keeps every later load unconditional.
  if (options_.payload != PayloadMode::kRaw) {
    if (meta_->quantizer() == nullptr) {
      return Status::InvalidArgument(
          "payload=pq requires a PQ-enabled deployment (no codebook in meta blob)");
    }
    if (static_cast<Metric>(header_.metric) == Metric::kCosine) {
      return Status::InvalidArgument("payload=pq does not support cosine");
    }
    for (uint32_t c = 0; c < table_.size(); ++c) {
      if (table_[c].pq_head_size == 0) {
        return Status::InvalidArgument("payload=pq: cluster " + std::to_string(c) +
                                       " was provisioned without PQ codes");
      }
    }
  }

  qp_.ResetStats();
  clock_.Reset();
  return Status::Ok();
}

Status ComputeNode::RefreshMetadata() {
  const size_t table_bytes =
      static_cast<size_t>(header_.num_clusters) * ClusterMeta::kEncodedSize;
  AlignedBuffer buf(table_bytes, 64);
  const SlotRoute route = RouteFor(0);
  Status read = qp_.Read(route.rkey, header_.table_offset, buf.span(), route.epoch);
  if (!read.ok()) {
    // Feed the detector so the WithRetry loop around this refresh converges
    // onto the promoted replica instead of hammering a dead primary.
    if (IsReachabilityFailure(read)) NoteSlotFailure(0, nullptr);
    return read;
  }
  std::vector<ClusterMeta> fresh(header_.num_clusters);
  for (uint32_t c = 0; c < header_.num_clusters; ++c) {
    DHNSW_ASSIGN_OR_RETURN(
        fresh[c],
        DecodeClusterMeta(buf.subspan(static_cast<size_t>(c) * ClusterMeta::kEncodedSize,
                                      ClusterMeta::kEncodedSize)));
  }
  // Drop cached clusters whose overflow advanced since they were loaded —
  // their resident copy is missing the newly inserted vectors.
  for (uint32_t c = 0; c < fresh.size(); ++c) {
    const LoadedClusterPtr* resident = cache_.Peek(c);
    if (resident != nullptr && (*resident)->used_bytes_at_load != fresh[c].overflow_used) {
      cache_.Erase(c);
    }
  }
  table_ = std::move(fresh);
  return Status::Ok();
}

void ComputeNode::InvalidateCache() { cache_.Clear(); }

bool ComputeNode::LoadedCluster::IsDeleted(uint32_t global_id) const noexcept {
  return std::binary_search(tombstones.begin(), tombstones.end(), global_id);
}

void ComputeNode::LoadedCluster::Search(std::span<const float> q, size_t k, uint32_t ef,
                                        Metric metric, SubSearchMode mode,
                                        TopKHeap* out) const {
  if (mode == SubSearchMode::kFlatScan) {
    // IVF-style exact scan over the cluster's stored vectors: the rows are
    // contiguous, so score a chunk per batched-kernel call (dispatch
    // hoisted) and filter tombstones only when folding into the heap.
    const RowsKernel rows = ActiveKernels().Rows(metric);
    const uint32_t dim = cluster->index.dim();
    constexpr size_t kChunk = 256;
    float dists[kChunk];
    const size_t n = cluster->index.size();
    for (size_t base = 0; base < n; base += kChunk) {
      const size_t cnt = std::min(kChunk, n - base);
      rows(q.data(), cluster->index.vectors().data() + base * dim, dim, cnt, dists);
      for (size_t j = 0; j < cnt; ++j) {
        const uint32_t gid = cluster->global_ids[base + j];
        if (!IsDeleted(gid)) out->Push(dists[j], gid);
      }
    }
  } else {
    // Graph part: local ids -> global ids, skipping tombstoned entries. Ask
    // for a few extra candidates so deletions don't starve the top-k. The
    // result buffer is thread-local so steady-state sub-searches allocate
    // nothing.
    const size_t slack = std::min<size_t>(tombstones.size(), 64);
    static thread_local std::vector<Scored> results;
    cluster->index.Search(q, k + slack, std::max<uint32_t>(ef, 1), &results);
    for (const Scored& s : results) {
      const uint32_t gid = cluster->global_ids[s.id];
      if (!IsDeleted(gid)) out->Push(s.distance, gid);
    }
  }
  // Overflow part: the paper appends inserted vectors as raw records read
  // back with the cluster; unless linked at load time they are scanned
  // exactly (no graph links yet).
  const PairKernel pair = ActiveKernels().Pair(metric);
  for (const OverflowRecord& rec : overflow) {
    if (!IsDeleted(rec.global_id)) {
      out->Push(pair(rec.vector.data(), q.data(), rec.vector.size()), rec.global_id);
    }
  }
}

void ComputeNode::LoadedCluster::SearchPq(std::span<const float> q, size_t k,
                                          uint32_t ef, Metric metric,
                                          SubSearchMode mode, uint32_t rerank,
                                          std::vector<Scored>* rerank_cands,
                                          TopKHeap* out) const {
  // Per-(query, cluster) ADC LUT; thread-local so steady-state sub-searches
  // allocate nothing (pool workers each get their own).
  static thread_local std::vector<float> lut;
  static thread_local std::vector<float> scratch;
  static thread_local std::vector<Scored> adc;
  lut.resize(quantizer->lut_floats());
  scratch.resize(quantizer->dim());
  const float bias = quantizer->BuildAdcLut(metric, q, centroid, lut.data(),
                                            scratch.data());
  const bool flat = mode == SubSearchMode::kFlatScan;
  const uint32_t slack =
      static_cast<uint32_t>(std::min<size_t>(tombstones.size(), 64));

  if (rerank_cands != nullptr) {
    // Collect the top max(k, rerank) survivors for exact re-rank; graph
    // candidates do NOT enter the heap here — their ADC scores are only a
    // ranking, the caller pushes the exact (or fallback) distances.
    const uint32_t want = std::max<uint32_t>(static_cast<uint32_t>(k), rerank);
    SearchPqCluster(*pq, lut.data(), bias, want + slack,
                    std::max<uint32_t>(ef, want + slack), flat, &adc);
    for (const Scored& s : adc) {
      if (IsDeleted(pq->global_ids[s.id])) continue;
      rerank_cands->push_back(s);
      if (rerank_cands->size() == want) break;
    }
  } else {
    SearchPqCluster(*pq, lut.data(), bias, static_cast<uint32_t>(k) + slack,
                    std::max<uint32_t>(ef, 1), flat, &adc);
    for (const Scored& s : adc) {
      const uint32_t gid = pq->global_ids[s.id];
      if (!IsDeleted(gid)) out->Push(s.distance, gid);
    }
  }
  // Overflow records arrive raw with the prefix read; score them exactly.
  const PairKernel pair = ActiveKernels().Pair(metric);
  for (const OverflowRecord& rec : overflow) {
    if (!IsDeleted(rec.global_id)) {
      out->Push(pair(rec.vector.data(), q.data(), rec.vector.size()), rec.global_id);
    }
  }
}

Result<ComputeNode::LoadedClusterPtr> ComputeNode::DecodeLoaded(
    uint32_t cluster, std::span<const uint8_t> bytes, uint64_t used_bytes,
    double* deserialize_us, bool traced) {
  const ClusterMeta& meta = table_[cluster];
  WallTimer timer;
  std::optional<telemetry::TraceScope> decode_scope;
  if (traced) {
    decode_scope.emplace(trace_ctx_, "cluster.decode");
    decode_scope->set_args(cluster, bytes.size());
  }

  const bool pq_mode = options_.payload != PayloadMode::kRaw;

  // Raw mode reads one contiguous range; overflow records precede the blob
  // for a backward (B-side) cluster and follow it for a forward one. PQ mode
  // always stages [used overflow][pq prefix] in the buffer (PostRoundReads).
  const std::span<const uint8_t> blob_bytes =
      pq_mode ? bytes.subspan(used_bytes, meta.pq_head_size)
              : bytes.subspan(meta.BlobOffsetInRead(used_bytes), meta.blob_size);
  const std::span<const uint8_t> overflow_bytes =
      pq_mode ? bytes.subspan(0, used_bytes)
              : bytes.subspan(meta.OverflowOffsetInRead(), used_bytes);

  auto loaded = std::make_shared<LoadedCluster>();
  if (pq_mode) {
    DHNSW_ASSIGN_OR_RETURN(PqCluster decoded, DecodePqCluster(blob_bytes));
    if (decoded.partition_id != cluster) {
      return Status::Corruption("loaded blob belongs to a different partition");
    }
    loaded->pq.emplace(std::move(decoded));
    const std::span<const float> rep = meta_->index().vector(cluster);
    loaded->centroid.assign(rep.begin(), rep.end());
    loaded->quantizer = meta_->quantizer();
  } else {
    DHNSW_ASSIGN_OR_RETURN(Cluster decoded,
                           DecodeCluster(blob_bytes, options_.sub_hnsw_template));
    if (decoded.partition_id != cluster) {
      return Status::Corruption("loaded blob belongs to a different partition");
    }
    loaded->cluster.emplace(std::move(decoded));
  }
  DHNSW_ASSIGN_OR_RETURN(
      std::vector<OverflowRecord> records,
      DecodeOverflowArea(overflow_bytes, used_bytes, header_.dim));

  // Split the raw records into tombstones and live inserts; optionally link
  // live inserts straight into the decoded graph (raw payloads only — a PQ
  // prefix has no raw graph to link into).
  std::vector<uint32_t> tombstones;
  std::vector<OverflowRecord> live;
  for (OverflowRecord& rec : records) {
    if (rec.is_tombstone()) {
      tombstones.push_back(rec.global_id);
    } else {
      live.push_back(std::move(rec));
    }
  }
  std::sort(tombstones.begin(), tombstones.end());
  if (options_.link_overflow_on_load && !pq_mode) {
    for (const OverflowRecord& rec : live) {
      loaded->cluster->index.Add(rec.vector);
      loaded->cluster->global_ids.push_back(rec.global_id);
    }
    live.clear();
  }
  loaded->overflow = std::move(live);
  loaded->tombstones = std::move(tombstones);
  loaded->used_bytes_at_load = used_bytes;
  *deserialize_us += timer.elapsed_us();
  return LoadedClusterPtr(std::move(loaded));
}

uint32_t ComputeNode::DoorbellWindow() const noexcept {
  return options_.mode == EngineMode::kFull ? std::max<uint32_t>(options_.doorbell_batch, 1)
                                            : 1;
}

std::vector<ComputeNode::PendingLoad> ComputeNode::PostRoundReads(
    std::vector<uint32_t>* remaining, const std::function<void()>& ring) {
  // Stage buffers and post READs; ring per cluster (kNoDoorbell) or per
  // doorbell chunk (kFull). A doorbell ring is a per-destination-QP batch,
  // so loads are grouped by owning memory instance (node_slot) before
  // chunking. The QP itself also enforces the doorbell window.
  std::stable_sort(remaining->begin(), remaining->end(), [this](uint32_t a, uint32_t b) {
    return table_[a].node_slot < table_[b].node_slot;
  });

  const bool pq_mode = options_.payload != PayloadMode::kRaw;
  const uint32_t doorbell = DoorbellWindow();
  std::vector<PendingLoad> pending;
  pending.reserve(remaining->size());
  uint32_t in_ring = 0;
  uint32_t ring_slot = 0;
  for (uint32_t cluster : *remaining) {
    const ClusterMeta& meta = table_[cluster];
    if (in_ring > 0 && meta.node_slot != ring_slot) {
      ring();  // destination changed: close the previous batch
      in_ring = 0;
    }
    ring_slot = meta.node_slot;
    const SlotRoute route = RouteFor(meta.node_slot);
    if (pq_mode) {
      // PQ prefix load: the buffer is uniformly [used overflow][pq prefix].
      // A backward cluster's records end exactly where its blob begins, so
      // one contiguous READ covers both; a forward cluster's overflow sits
      // *after* the float rows the prefix read skips, so it needs a second
      // READ in the same ring (elided while no inserts landed).
      const uint64_t used = meta.overflow_used;
      const uint64_t head = meta.pq_head_size;
      pending.push_back(PendingLoad{cluster, AlignedBuffer(used + head, 64), used});
      std::span<uint8_t> buf = pending.back().buffer.span();
      if (meta.direction == OverflowDirection::kBackward) {
        qp_.PostRead(route.rkey, meta.overflow_base - used, buf.first(used + head),
                     cluster, route.epoch);
        if (++in_ring == doorbell) {
          ring();
          in_ring = 0;
        }
      } else {
        if (used > 0) {
          qp_.PostRead(route.rkey, meta.overflow_base, buf.first(used), cluster,
                       route.epoch);
          if (++in_ring == doorbell) {
            ring();
            in_ring = 0;
          }
        }
        qp_.PostRead(route.rkey, meta.blob_offset, buf.subspan(used, head), cluster,
                     route.epoch);
        if (++in_ring == doorbell) {
          ring();
          in_ring = 0;
        }
      }
      continue;
    }
    const ClusterMeta::Range range = meta.ReadRange(meta.overflow_used);
    pending.push_back(
        PendingLoad{cluster, AlignedBuffer(range.length, 64), meta.overflow_used});
    qp_.PostRead(route.rkey, range.offset, pending.back().buffer.span(), cluster,
                 route.epoch);
    if (++in_ring == doorbell) {
      ring();
      in_ring = 0;
    }
  }
  if (in_ring > 0) ring();
  return pending;
}

std::vector<std::pair<uint32_t, Status>> ComputeNode::DrainReadErrors() {
  // Drain the whole CQ before acting on errors — leaving stale completions
  // behind would poison the next batch. Each WR carries its cluster id, so
  // one failed READ never hides its siblings' outcomes.
  std::vector<std::pair<uint32_t, Status>> read_errors;
  rdma::Completion c;
  while (qp_.PollCompletion(&c)) {
    if (c.status != rdma::WcStatus::kSuccess) {
      read_errors.emplace_back(static_cast<uint32_t>(c.wr_id),
                               rdma::QueuePair::ToStatus(c));
    }
  }
  return read_errors;
}

void ComputeNode::RecordLoadError(LoadRoundState* state, uint32_t cluster, Status st) {
  for (auto& [id, s] : state->last_error) {
    if (id == cluster) {
      s = std::move(st);
      return;
    }
  }
  state->last_error.emplace_back(cluster, std::move(st));
}

void ComputeNode::ProcessLoadRound(
    std::vector<PendingLoad>& pending,
    const std::vector<std::pair<uint32_t, Status>>& read_errors,
    std::vector<Result<LoadedClusterPtr>>* predecoded, LoadRoundState* state,
    std::vector<std::pair<uint32_t, LoadedClusterPtr>>* out, BatchBreakdown* breakdown,
    std::vector<uint32_t>* next_round) {
  auto fail_one = [&](uint32_t cluster, Status st) {
    if (IsRetryable(st)) next_round->push_back(cluster);
    RecordLoadError(state, cluster, std::move(st));
  };

  for (size_t i = 0; i < pending.size(); ++i) {
    PendingLoad& load = pending[i];
    const auto err = std::find_if(
        read_errors.begin(), read_errors.end(),
        [&load](const auto& e) { return e.first == load.cluster; });
    if (err != read_errors.end()) {
      fail_one(load.cluster, err->second);
      continue;
    }
    Result<LoadedClusterPtr> loaded =
        predecoded != nullptr
            ? std::move((*predecoded)[i])
            : DecodeLoaded(load.cluster, load.buffer.span(), load.used_bytes,
                           &breakdown->deserialize_us);
    if (!loaded.ok()) {
      // A CRC/format mismatch on freshly read bytes is wire damage; a
      // re-read fetches a clean copy. The damaged copy is NEVER cached.
      fail_one(load.cluster, loaded.status());
      continue;
    }
    if (predecoded != nullptr) {
      // The real decode ran on the prefetch worker (untraced — the buffer is
      // single-writer); this marker keeps per-cluster decode visibility in
      // the deterministic trace stream.
      trace_ctx_.Event("cluster.decode", telemetry::TraceEvent::kNoQuery, load.cluster,
                       load.buffer.size());
    }
    breakdown->clusters_loaded += 1;
    breakdown->bytes_read += load.buffer.size();
    if (options_.mode != EngineMode::kNaive) {
      cache_.Put(load.cluster, loaded.value(), CacheWeight(load.buffer.size()));
    }
    out->emplace_back(load.cluster, std::move(loaded).value());
  }
}

bool ComputeNode::AdvanceLoadRound(LoadRoundState* state,
                                   const std::vector<uint32_t>& next_round,
                                   BatchBreakdown* breakdown) {
  uint64_t backoff = 0;
  if (!state->budget.AllowRetry(++state->round_failures, &backoff)) return false;
  breakdown->retries += next_round.size();
  breakdown->backoff_ns += backoff;
  trace_ctx_.Event("load.retry", telemetry::TraceEvent::kNoQuery, next_round.size(),
                   backoff);
  return true;
}

void ComputeNode::RunLoadRounds(LoadRoundState* state,
                                std::vector<std::pair<uint32_t, LoadedClusterPtr>>* out,
                                BatchBreakdown* breakdown) {
  qp_.set_max_doorbell_wrs(DoorbellWindow());
  // One round loads `remaining` and reports per-cluster outcomes; transient
  // failures (unreachable, timeout, CRC-detected corruption) go back into
  // `remaining` with FRESH buffers and are retried under the retry budget.
  while (!state->remaining.empty()) {
    std::vector<PendingLoad> pending =
        PostRoundReads(&state->remaining, [this] { qp_.RingDoorbell(); });
    const std::vector<std::pair<uint32_t, Status>> read_errors = DrainReadErrors();
    // Unreachable/fenced loads are also failure-detector observations; once
    // enough rounds strike out, the slot fails over and the next round's
    // RouteFor resolves to the promoted replica at the bumped epoch.
    ReportLoadFailures(read_errors, breakdown);

    std::vector<uint32_t> next_round;
    ProcessLoadRound(pending, read_errors, nullptr, state, out, breakdown, &next_round);
    if (next_round.empty()) break;
    if (!AdvanceLoadRound(state, next_round, breakdown)) break;
    state->remaining = std::move(next_round);
  }
}

Status ComputeNode::FinalizeLoads(
    LoadRoundState* state, const std::vector<std::pair<uint32_t, LoadedClusterPtr>>& out,
    BatchBreakdown* breakdown, std::vector<FailedLoad>* failed) {
  // Whatever still carries an error and is not resident was abandoned.
  for (auto& [cluster, st] : state->last_error) {
    const bool resident = std::any_of(out.begin(), out.end(),
                                      [c = cluster](const auto& p) { return p.first == c; });
    if (resident) continue;
    breakdown->failed_loads += 1;
    if (failed == nullptr) return std::move(st);  // strict: first error fails the call
    failed->push_back(FailedLoad{cluster, std::move(st)});
  }
  return Status::Ok();
}

Status ComputeNode::LoadClusters(std::span<const uint32_t> ids,
                                 std::vector<std::pair<uint32_t, LoadedClusterPtr>>* out,
                                 BatchBreakdown* breakdown,
                                 std::vector<FailedLoad>* failed) {
  if (ids.empty()) return Status::Ok();
  for (uint32_t cluster : ids) {
    if (cluster >= table_.size()) return Status::InvalidArgument("LoadClusters: bad id");
  }
  LoadRoundState state(options_.retry, &clock_, real_backoff_);
  state.remaining.assign(ids.begin(), ids.end());
  RunLoadRounds(&state, out, breakdown);
  return FinalizeLoads(&state, *out, breakdown, failed);
}

ThreadPool* ComputeNode::SearchPool() {
  const size_t want = std::max<size_t>(options_.search_threads, 1);
  if (search_pool_ == nullptr || search_pool_->num_threads() != want) {
    search_pool_ = std::make_unique<ThreadPool>(want);
  }
  return search_pool_.get();
}

ThreadPool* ComputeNode::PrefetchPool() {
  if (prefetch_pool_ == nullptr) prefetch_pool_ = std::make_unique<ThreadPool>(1);
  return prefetch_pool_.get();
}

std::unique_ptr<ComputeNode::WaveLoadState> ComputeNode::IssueWaveLoads(
    const LoadWave& wave, const std::vector<uint8_t>* load_wanted, bool pipelined,
    BatchBreakdown* breakdown) {
  auto state = std::make_unique<WaveLoadState>();
  uint64_t resident_skips = 0;
  for (uint32_t cluster : wave.to_load) {
    if (load_wanted != nullptr && !(*load_wanted)[cluster]) {
      ++breakdown->pruned_loads;
      continue;
    }
    if (!cache_.Contains(cluster)) {
      state->to_load.push_back(cluster);
      trace_ctx_.Event("cache.miss", telemetry::TraceEvent::kNoQuery, cluster);
    } else {
      ++resident_skips;  // became resident since the plan (counts as a hit)
    }
  }
  Compute().cache_miss_clusters->Add(state->to_load.size());
  Compute().cache_hit_clusters->Add(resident_skips);
  if (!pipelined || state->to_load.empty()) return state;

  // Pipelined path: post this wave's READs NOW and hand them to the prefetch
  // worker; they drain (data movement + fault evaluation + decode) while the
  // previous wave's sub-searches run. All sim-clock/stats accounting is
  // deferred to the reap, so the fabric-visible op sequence — and with it
  // every fault decision, retry, and simulated timestamp — is identical to
  // the blocking path. The span is sim-instantaneous (posting advances no
  // simulated time), keeping the exact stage/batch sim coverage invariant.
  telemetry::TraceScope prefetch_scope(trace_ctx_, "stage.prefetch");
  state->async = true;
  qp_.set_max_doorbell_wrs(DoorbellWindow());
  state->pending = PostRoundReads(&state->to_load, [this] { qp_.StageAsyncRing(); });
  state->batch = qp_.TakeAsyncBatch();
  prefetch_scope.set_args(state->to_load.size(),
                          state->batch != nullptr ? state->batch->num_wrs() : 0);
  state->decoded.reserve(state->pending.size());
  for (size_t i = 0; i < state->pending.size(); ++i) {
    state->decoded.emplace_back(Status::Internal("prefetch: read failed before decode"));
  }
  Compute().prefetch_waves->Add(1);

  WaveLoadState* raw = state.get();
  state->done = PrefetchPool()->Submit([this, raw] {
    WallTimer worker_timer;
    qp_.ExecuteAsyncBatch(raw->batch.get());
    const std::span<const rdma::Completion> comps = raw->batch->completions();
    for (size_t i = 0; i < raw->pending.size(); ++i) {
      // Each WR carries its cluster id; a cluster may span several WRs (the
      // PQ prefix + overflow pair), so decode only when every one succeeded.
      const uint32_t cluster = raw->pending[i].cluster;
      bool all_ok = true;
      for (const rdma::Completion& c : comps) {
        if (static_cast<uint32_t>(c.wr_id) == cluster &&
            c.status != rdma::WcStatus::kSuccess) {
          all_ok = false;
          break;
        }
      }
      if (!all_ok) continue;
      raw->decoded[i] = DecodeLoaded(cluster, raw->pending[i].buffer.span(),
                                     raw->pending[i].used_bytes, &raw->deserialize_us,
                                     /*traced=*/false);
    }
    raw->worker_busy_ns = worker_timer.elapsed_ns();
  });
  return state;
}

Status ComputeNode::ReapWaveLoads(WaveLoadState* wave_load,
                                  std::vector<std::pair<uint32_t, LoadedClusterPtr>>* out,
                                  BatchBreakdown* breakdown,
                                  std::vector<FailedLoad>* failed) {
  if (!wave_load->async) return LoadClusters(wave_load->to_load, out, breakdown, failed);

  // Join the prefetch worker; whatever of its busy time we did NOT spend
  // waiting here ran concurrently with the previous wave's sub-searches.
  WallTimer wait_timer;
  wave_load->done.get();
  wave_load->async = false;  // consumed: AbandonPrefetch must not re-join/re-reap
  const uint64_t wait_ns = wait_timer.elapsed_ns();
  const uint64_t overlap_ns =
      wave_load->worker_busy_ns > wait_ns ? wave_load->worker_busy_ns - wait_ns : 0;
  breakdown->pipeline_overlap_ns += overlap_ns;
  Compute().pipeline_overlap_ns->Add(overlap_ns);

  // Budget starts before the deferred charge lands, mirroring the blocking
  // path where RetryBudget is constructed before round 1's network time.
  LoadRoundState state(options_.retry, &clock_, real_backoff_);
  qp_.ReapAsyncBatch(wave_load->batch.get());
  const std::vector<std::pair<uint32_t, Status>> read_errors = DrainReadErrors();
  ReportLoadFailures(read_errors, breakdown);

  std::vector<uint32_t> next_round;
  ProcessLoadRound(wave_load->pending, read_errors, &wave_load->decoded, &state, out,
                   breakdown, &next_round);
  breakdown->deserialize_us += wave_load->deserialize_us;
  // Rounds >= 2 (transient faults on prefetched clusters) run blocking, on
  // the shared retry machinery — backoff, failover reporting, and abandoned-
  // load semantics are exactly those of the sequential path.
  if (!next_round.empty() && AdvanceLoadRound(&state, next_round, breakdown)) {
    state.remaining = std::move(next_round);
    RunLoadRounds(&state, out, breakdown);
  }
  return FinalizeLoads(&state, *out, breakdown, failed);
}

void ComputeNode::AbandonPrefetch(WaveLoadState* wave_load) {
  if (wave_load == nullptr || !wave_load->async) return;
  if (wave_load->done.valid()) wave_load->done.get();
  // Charge the posted round anyway (those READs did cross the fabric) and
  // drop its completions: the batch is failing, nothing will consume them,
  // and the next batch must find an empty CQ.
  qp_.ReapAsyncBatch(wave_load->batch.get());
  rdma::Completion c;
  while (qp_.PollCompletion(&c)) {
  }
}

void ComputeNode::RunRerank(const VectorSet& queries, std::vector<RerankTask>& tasks,
                            std::span<TopKHeap> heaps, BatchBreakdown* breakdown) {
  if (tasks.empty()) return;
  telemetry::TraceScope rerank_scope(trace_ctx_, "stage.rerank");

  // Unique (cluster, local id) fetch set in deterministic first-use order —
  // a vector that survived ADC for several queries is read once.
  struct Fetch {
    uint32_t cluster;
    uint32_t local;
  };
  auto fetch_key = [](uint32_t cluster, uint32_t local) {
    return (static_cast<uint64_t>(cluster) << 32) | local;
  };
  std::vector<Fetch> fetches;
  std::unordered_map<uint64_t, uint32_t> fetch_index;
  for (const RerankTask& t : tasks) {
    breakdown->rerank_candidates += t.cands.size();
    for (const Scored& c : t.cands) {
      if (fetch_index.emplace(fetch_key(t.cluster, c.id),
                              static_cast<uint32_t>(fetches.size()))
              .second) {
        fetches.push_back(Fetch{t.cluster, c.id});
      }
    }
  }
  // Group by owning memory instance so each doorbell ring targets one QP;
  // stable, so the order stays deterministic.
  std::stable_sort(fetches.begin(), fetches.end(), [this](const Fetch& a, const Fetch& b) {
    return table_[a.cluster].node_slot < table_[b.cluster].node_slot;
  });
  for (uint32_t i = 0; i < fetches.size(); ++i) {
    fetch_index[fetch_key(fetches[i].cluster, fetches[i].local)] = i;
  }
  rerank_scope.set_args(tasks.size(), fetches.size());

  const uint32_t dim = header_.dim;
  const size_t row_bytes = static_cast<size_t>(dim) * sizeof(float);
  AlignedBuffer buf(fetches.size() * row_bytes, 64);
  std::vector<uint8_t> fetched(fetches.size(), 0);

  // Post/ring/drain with the load path's retry discipline. A vector whose
  // READ still fails after the budget keeps its ADC score — re-rank degrades
  // per candidate, it never fails the batch.
  qp_.set_max_doorbell_wrs(DoorbellWindow());
  const uint32_t doorbell = DoorbellWindow();
  std::vector<uint32_t> remaining(fetches.size());
  for (uint32_t i = 0; i < fetches.size(); ++i) remaining[i] = i;
  RetryBudget budget(options_.retry, &clock_, real_backoff_);
  uint32_t failures = 0;
  while (!remaining.empty()) {
    uint32_t in_ring = 0;
    uint32_t ring_slot = 0;
    for (uint32_t fi : remaining) {
      const Fetch& f = fetches[fi];
      const ClusterMeta& meta = table_[f.cluster];
      if (in_ring > 0 && meta.node_slot != ring_slot) {
        qp_.RingDoorbell();
        in_ring = 0;
      }
      ring_slot = meta.node_slot;
      const SlotRoute route = RouteFor(meta.node_slot);
      qp_.PostRead(route.rkey,
                   meta.blob_offset + meta.pq_head_size +
                       static_cast<uint64_t>(f.local) * row_bytes,
                   buf.subspan(static_cast<size_t>(fi) * row_bytes, row_bytes), fi,
                   route.epoch);
      if (++in_ring == doorbell) {
        qp_.RingDoorbell();
        in_ring = 0;
      }
    }
    if (in_ring > 0) qp_.RingDoorbell();
    breakdown->rerank_reads += remaining.size();
    breakdown->rerank_bytes += remaining.size() * row_bytes;

    std::vector<uint32_t> failed;
    Status first_error;
    rdma::Completion c;
    while (qp_.PollCompletion(&c)) {
      if (c.status == rdma::WcStatus::kSuccess) {
        fetched[c.wr_id] = 1;
        continue;
      }
      failed.push_back(static_cast<uint32_t>(c.wr_id));
      if (first_error.ok()) first_error = rdma::QueuePair::ToStatus(c);
    }
    if (failed.empty()) break;
    uint64_t backoff = 0;
    if (!IsRetryable(first_error) || !budget.AllowRetry(++failures, &backoff)) break;
    breakdown->retries += failed.size();
    breakdown->backoff_ns += backoff;
    std::sort(failed.begin(), failed.end());
    remaining = std::move(failed);
  }

  // Exact rescore; ADC fallback (already bias-adjusted and heap-comparable)
  // for the fetches that never landed.
  const Metric metric = options_.sub_hnsw_template.metric;
  const PairKernel pair = ActiveKernels().Pair(metric);
  for (const RerankTask& t : tasks) {
    const std::span<const float> q = queries[t.query_row];
    TopKHeap& heap = heaps[t.heap];
    for (const Scored& cand : t.cands) {
      const uint32_t fi = fetch_index[fetch_key(t.cluster, cand.id)];
      const uint32_t gid = t.loaded->pq->global_ids[cand.id];
      if (fetched[fi]) {
        const float* vec =
            reinterpret_cast<const float*>(buf.data() + static_cast<size_t>(fi) * row_bytes);
        heap.Push(pair(q.data(), vec, dim), gid);
      } else {
        heap.Push(cand.distance, gid);
        ++breakdown->rerank_fallbacks;
      }
    }
  }
}

Status ComputeNode::NaiveSearch(const VectorSet& queries, size_t begin, size_t count,
                                size_t k, uint32_t ef_search,
                                const std::vector<std::vector<uint32_t>>& routes,
                                BatchResult* result) {
  // Baseline (1): no dedup, no cache, no doorbell — one READ round trip per
  // (query, cluster) pair, exactly as described in the paper's §4.
  const Metric metric = options_.sub_hnsw_template.metric;
  for (size_t i = 0; i < count; ++i) {
    TopKHeap heap(k);
    for (uint32_t cluster : routes[i]) {
      std::vector<std::pair<uint32_t, LoadedClusterPtr>> loaded;
      std::vector<FailedLoad> failures;
      const uint32_t id[1] = {cluster};
      DHNSW_RETURN_IF_ERROR(LoadClusters(
          id, &loaded, &result->breakdown,
          options_.partial_results ? &failures : nullptr));
      if (!failures.empty()) {
        // Degrade this query only: it keeps candidates from its other
        // clusters; siblings in the batch are unaffected.
        if (result->statuses[i].ok()) result->statuses[i] = failures.front().status;
        continue;
      }
      WallTimer sub_timer;
      const LoadedClusterPtr& resident = loaded.front().second;
      std::vector<RerankTask> tasks;
      switch (options_.payload) {
        case PayloadMode::kRaw:
          resident->Search(queries[begin + i], k, ef_search, metric,
                           options_.sub_search, &heap);
          break;
        case PayloadMode::kPq:
          resident->SearchPq(queries[begin + i], k, ef_search, metric,
                             options_.sub_search, 0, nullptr, &heap);
          break;
        case PayloadMode::kPqRerank:
          tasks.emplace_back();
          tasks.back().cluster = cluster;
          tasks.back().loaded = resident.get();
          tasks.back().query_row = begin + i;
          tasks.back().heap = 0;
          resident->SearchPq(queries[begin + i], k, ef_search, metric,
                             options_.sub_search, options_.rerank_depth,
                             &tasks.back().cands, &heap);
          break;
      }
      result->breakdown.sub_us += sub_timer.elapsed_us();
      if (!tasks.empty()) {
        RunRerank(queries, tasks, std::span<TopKHeap>(&heap, 1),
                  &result->breakdown);
      }
    }
    result->results[i] = heap.TakeSorted();
  }
  return Status::Ok();
}

Result<BatchResult> ComputeNode::SearchBatch(const VectorSet& queries, size_t begin,
                                             size_t count, size_t k, uint32_t ef_search) {
  if (!connected()) return Status::Unavailable("ComputeNode: not connected");
  if (begin + count > queries.size()) {
    return Status::InvalidArgument("SearchBatch: range out of bounds");
  }
  if (queries.dim() != header_.dim) {
    return Status::InvalidArgument("SearchBatch: query dim mismatch");
  }

  BatchResult result;
  result.results.resize(count);
  result.statuses.assign(count, Status::Ok());
  result.breakdown.num_queries = count;

  // One trace "batch" umbrella per SearchBatch; the disjoint "stage.*" spans
  // below partition it, so their wall/sim sums reconcile against the umbrella
  // (the >= 95% coverage contract in DESIGN.md).
  trace_ctx_.batch = ++batch_seq_;
  telemetry::TraceScope batch_scope(trace_ctx_, "batch");
  batch_scope.set_args(count, k);

  const rdma::QpStats stats_before = qp_.stats();

  // Offset-table refresh: one small READ per batch keeps the cached offsets
  // and overflow counters current (paper §3.2, "latest version stored at the
  // beginning of the memory space"). Retried: a transiently missed refresh
  // should not fail a whole batch.
  {
    telemetry::TraceScope refresh_scope(trace_ctx_, "stage.refresh");
    Status refresh = WithRetry([this] { return RefreshMetadata(); },
                               &result.breakdown.retries,
                               &result.breakdown.backoff_ns);
    DHNSW_RETURN_IF_ERROR(std::move(refresh));
  }

  // --- meta-HNSW routing (the "cache computation" column of Tables 1-2) ---
  WallTimer meta_timer;
  std::vector<std::vector<Scored>> routes_scored(count);
  std::vector<std::vector<uint32_t>> routes(count);
  const uint32_t b = std::max<uint32_t>(options_.clusters_per_query, 1);
  {
    telemetry::TraceScope meta_scope(trace_ctx_, "stage.meta");
    meta_scope.set_args(count, b);
    for (size_t i = 0; i < count; ++i) {
      telemetry::TraceScope query_scope(trace_ctx_, "query.meta", static_cast<uint32_t>(i));
      routes_scored[i] = meta_->RouteManyScored(queries[begin + i], b);
      routes[i].reserve(routes_scored[i].size());
      for (const Scored& s : routes_scored[i]) routes[i].push_back(s.id);
    }
    result.breakdown.meta_us = meta_timer.elapsed_us();
  }

  if (options_.mode == EngineMode::kNaive) {
    telemetry::TraceScope naive_scope(trace_ctx_, "stage.naive");
    DHNSW_RETURN_IF_ERROR(NaiveSearch(queries, begin, count, k, ef_search, routes, &result));
  } else {
    // --- query-aware batched loading (§3.3) ---
    BatchPlan plan;
    {
      telemetry::TraceScope plan_scope(trace_ctx_, "stage.plan");
      plan = PlanBatch(routes, [this](uint32_t c) { return cache_.Contains(c); },
                       options_.cache_capacity);
      plan_scope.set_args(plan.unique_clusters, plan.cache_hits);
    }
    result.breakdown.cache_hits = plan.cache_hits;
    Compute().cache_hit_clusters->Add(plan.cache_hits);

    std::vector<TopKHeap> heaps;
    heaps.reserve(count);
    for (size_t i = 0; i < count; ++i) heaps.emplace_back(k);

    const Metric metric = options_.sub_hnsw_template.metric;
    const double prune = options_.adaptive_prune_factor;

    // Representative distance for a (query, cluster) pair — b is small, a
    // linear scan beats a hash map here.
    auto rep_dist = [&](uint32_t qi, uint32_t cluster) {
      for (const Scored& s : routes_scored[qi]) {
        if (s.id == cluster) return static_cast<double>(s.distance);
      }
      return 0.0;  // not routed => never prune (shouldn't happen)
    };
    // Monotone predicate: once a query's heap is full, its worst only
    // improves, so a pruned pair stays pruned for the rest of the batch.
    // Under L2 the stored distances are squared; the sound bound uses true
    // distances with the cluster's covering radius:
    //   any member distance >= dist(q, rep) - radius,
    // so prune when (dist(q,rep) - radius) > factor * kth_best. Non-L2
    // metrics lack the triangle inequality; fall back to comparing raw
    // representative scores.
    auto prunable = [&](const WorkItem& item, const std::vector<TopKHeap>& heaps) {
      if (prune <= 0.0) return false;
      const TopKHeap& heap = heaps[item.query_index];
      if (!heap.full()) return false;
      const double rd = rep_dist(item.query_index, item.cluster);
      if (metric == Metric::kL2) {
        const double bound =
            std::sqrt(std::max(rd, 0.0)) - table_[item.cluster].radius;
        return bound > prune * std::sqrt(std::max<double>(heap.worst(), 0.0));
      }
      return rd > prune * static_cast<double>(heap.worst());
    };

    // Pipelined wave execution: with pipeline_depth >= 2 (and pruning off —
    // prune masks depend on heap state the previous wave has not produced
    // yet), each wave's cluster READs are posted before the previous wave's
    // sub-searches start, and drain + decode on the prefetch worker while
    // those searches run. Issue/reap keeps all fabric accounting on this
    // thread in the blocking path's exact order, so results, statuses, the
    // cache, and the simulated timeline are bit-identical either way.
    // kPqRerank also falls back to sequential: its owner-thread re-rank
    // READs would interleave with a prefetched wave's WR sequence, breaking
    // the deterministic fabric-op order replay and fault tests rely on.
    const bool pipelined = options_.pipeline_depth >= 2 && prune <= 0.0 &&
                           options_.payload != PayloadMode::kPqRerank;

    // Adaptive pruning: elide a cluster's load entirely when every query
    // that wanted it already has a full top-k that its representative
    // cannot beat (cf. learned early termination [12]).
    std::vector<uint8_t> load_wanted;
    auto wanted_for = [&](const LoadWave& wave) -> const std::vector<uint8_t>* {
      if (prune <= 0.0) return nullptr;
      load_wanted.assign(table_.size(), 0);
      for (const WorkItem& item : wave.work) {
        if (!prunable(item, heaps)) load_wanted[item.cluster] = 1;
      }
      return &load_wanted;
    };

    std::unique_ptr<WaveLoadState> inflight;
    // A failing batch must not leave a posted-but-unreaped prefetch on the
    // QP: the next batch would inherit its WRs and completions.
    struct InflightDrain {
      ComputeNode* node;
      std::unique_ptr<WaveLoadState>* inflight;
      ~InflightDrain() {
        if (*inflight != nullptr) node->AbandonPrefetch(inflight->get());
      }
    } drain_guard{this, &inflight};

    for (size_t wv = 0; wv < plan.waves.size(); ++wv) {
      const LoadWave& wave = plan.waves[wv];
      if (inflight == nullptr) {
        inflight = IssueWaveLoads(wave, wanted_for(wave), pipelined, &result.breakdown);
      }

      // Resident set for this wave: cache hits or fresh loads.
      std::vector<std::pair<uint32_t, LoadedClusterPtr>> fresh;
      std::vector<FailedLoad> failures;
      {
        telemetry::TraceScope load_scope(trace_ctx_, "stage.load");
        load_scope.set_args(inflight->to_load.size(), wave.work.size());
        DHNSW_RETURN_IF_ERROR(ReapWaveLoads(inflight.get(), &fresh, &result.breakdown,
                                            options_.partial_results ? &failures : nullptr));
      }
      inflight.reset();
      // One wave ahead (double-buffered): the next wave's misses post now and
      // drain on the prefetch worker while this wave's sub-searches run.
      if (pipelined && wv + 1 < plan.waves.size()) {
        inflight = IssueWaveLoads(plan.waves[wv + 1], nullptr, true, &result.breakdown);
      }
      // Graceful degradation: a permanently failed cluster poisons only the
      // queries routed to it — they keep candidates from their other
      // clusters and carry the failure in their per-query status.
      if (!failures.empty()) {
        for (const WorkItem& item : wave.work) {
          const auto f = std::find_if(
              failures.begin(), failures.end(),
              [&item](const FailedLoad& fl) { return fl.cluster == item.cluster; });
          if (f != failures.end() && result.statuses[item.query_index].ok()) {
            result.statuses[item.query_index] = f->status;
          }
        }
      }

      auto failed_cluster = [&failures](uint32_t cluster) {
        return std::any_of(failures.begin(), failures.end(),
                           [cluster](const FailedLoad& fl) { return fl.cluster == cluster; });
      };

      // Wave-local resident map, built once on the owner thread: O(1) lookup
      // per work item instead of a linear scan over `fresh`, and exactly one
      // cache probe per unique cluster. This also fixes a latent race — the
      // old per-item lookup called cache_.Get (which splices the recency
      // list) from pool workers. `fresh` holds shared_ptrs for the duration
      // of the wave, so entries stay alive even if the cache evicts them.
      wave_resident_.assign(table_.size(), nullptr);
      wave_probed_.assign(table_.size(), 0);
      for (const auto& [id, ptr] : fresh) {
        wave_resident_[id] = ptr.get();
        wave_probed_[id] = 1;
      }
      for (const WorkItem& item : wave.work) {
        if (wave_probed_[item.cluster] != 0) continue;
        // Pruned items never touched the cache before; keep it that way
        // (prunable is monotone, so an item pruned now stays pruned).
        if (prune > 0.0 && prunable(item, heaps)) continue;
        wave_probed_[item.cluster] = 1;
        if (failed_cluster(item.cluster)) continue;
        LoadedClusterPtr* hit = cache_.Get(item.cluster);
        wave_resident_[item.cluster] = hit == nullptr ? nullptr : hit->get();
      }

      WallTimer sub_timer;
      telemetry::TraceScope sub_scope(trace_ctx_, "stage.sub");
      sub_scope.set_args(wave.work.size());
      std::atomic<uint64_t> pruned_searches{0};
      const PayloadMode payload = options_.payload;
      // kPqRerank: per-work-item ADC survivor lists, filled by the searches
      // (possibly on pool threads) and drained by the owner-thread re-rank.
      std::vector<std::vector<Scored>> item_cands;
      if (payload == PayloadMode::kPqRerank) item_cands.resize(wave.work.size());
      auto search_one = [&](size_t w, const WorkItem& item,
                            const LoadedCluster* cluster) {
        const std::span<const float> q = queries[begin + item.query_index];
        TopKHeap* heap = &heaps[item.query_index];
        switch (payload) {
          case PayloadMode::kRaw:
            cluster->Search(q, k, ef_search, metric, options_.sub_search, heap);
            break;
          case PayloadMode::kPq:
            cluster->SearchPq(q, k, ef_search, metric, options_.sub_search, 0,
                              nullptr, heap);
            break;
          case PayloadMode::kPqRerank:
            cluster->SearchPq(q, k, ef_search, metric, options_.sub_search,
                              options_.rerank_depth, &item_cands[w], heap);
            break;
        }
      };
      if (options_.search_threads > 1) {
        // Work items are grouped by query, so parallelizing over disjoint
        // query ranges keeps each heap single-owner. The trace buffer is
        // single-writer, so only wave-level spans are recorded here;
        // per-work-item "query.sub" spans exist in the sequential path.
        // The pool is node-owned and persistent: constructing one per wave
        // spent a thread create/join cycle on every wave, a fixed cost that
        // dwarfed small waves and made search_threads > 1 slower than 1.
        std::vector<size_t> starts;
        for (size_t w = 0; w < wave.work.size(); ++w) {
          if (w == 0 || wave.work[w].query_index != wave.work[w - 1].query_index) {
            starts.push_back(w);
          }
        }
        SearchPool()->ParallelFor(starts.size(), [&](size_t s) {
          const size_t first = starts[s];
          const size_t last = s + 1 < starts.size() ? starts[s + 1] : wave.work.size();
          for (size_t w = first; w < last; ++w) {
            const WorkItem& item = wave.work[w];
            if (prunable(item, heaps)) {
              pruned_searches.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            if (failed_cluster(item.cluster)) continue;  // degraded, status set above
            const LoadedCluster* cluster = wave_resident_[item.cluster];
            if (cluster != nullptr) {
              Compute().sub_searches->Add(1);
              search_one(w, item, cluster);
            }
          }
        });
      } else {
        for (size_t w = 0; w < wave.work.size(); ++w) {
          const WorkItem& item = wave.work[w];
          if (prunable(item, heaps)) {
            pruned_searches.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (failed_cluster(item.cluster)) continue;  // degraded, status set above
          const LoadedCluster* cluster = wave_resident_[item.cluster];
          if (cluster == nullptr) return Status::Internal("wave cluster not resident");
          telemetry::TraceScope item_scope(trace_ctx_, "query.sub",
                                           static_cast<uint32_t>(item.query_index));
          item_scope.set_args(item.cluster);
          Compute().sub_searches->Add(1);
          search_one(w, item, cluster);
        }
      }
      result.breakdown.pruned_searches += pruned_searches.load();
      result.breakdown.sub_us += sub_timer.elapsed_us();
      sub_scope.Close();

      // Exact re-rank of this wave's ADC survivors. Runs on the owner thread
      // after every sub-search finished (its READs must not interleave with
      // pool-thread work); `fresh`'s shared_ptrs and the untouched cache keep
      // every `loaded` pointer alive until the heaps are updated.
      if (payload == PayloadMode::kPqRerank) {
        std::vector<RerankTask> tasks;
        for (size_t w = 0; w < wave.work.size(); ++w) {
          if (item_cands[w].empty()) continue;
          const WorkItem& item = wave.work[w];
          tasks.emplace_back();
          tasks.back().cluster = item.cluster;
          tasks.back().loaded = wave_resident_[item.cluster];
          tasks.back().query_row = begin + item.query_index;
          tasks.back().heap = item.query_index;
          tasks.back().cands = std::move(item_cands[w]);
        }
        RunRerank(queries, tasks, heaps, &result.breakdown);
      }
    }

    {
      telemetry::TraceScope finalize_scope(trace_ctx_, "stage.finalize");
      for (size_t i = 0; i < count; ++i) result.results[i] = heaps[i].TakeSorted();
    }
  }

  const rdma::QpStats delta = qp_.stats() - stats_before;
  result.breakdown.network_us = static_cast<double>(delta.sim_network_ns) / 1e3;
  result.breakdown.round_trips = delta.round_trips;

  const ComputeInstruments& metrics = Compute();
  metrics.batches->Add(1);
  metrics.queries->Add(count);
  metrics.cluster_loads->Add(result.breakdown.clusters_loaded);
  metrics.bytes_loaded->Add(result.breakdown.bytes_read);
  metrics.pruned_loads->Add(result.breakdown.pruned_loads);
  metrics.pruned_searches->Add(result.breakdown.pruned_searches);
  metrics.retries->Add(result.breakdown.retries);
  metrics.failed_loads->Add(result.breakdown.failed_loads);
  metrics.backoff_ns->Add(result.breakdown.backoff_ns);
  metrics.rerank_candidates->Add(result.breakdown.rerank_candidates);
  metrics.rerank_reads->Add(result.breakdown.rerank_reads);
  metrics.rerank_bytes->Add(result.breakdown.rerank_bytes);
  metrics.rerank_fallbacks->Add(result.breakdown.rerank_fallbacks);
  metrics.batch_round_trips->Record(delta.round_trips);
  metrics.batch_network_ns->Record(delta.sim_network_ns);
  return result;
}

Result<InsertReceipt> ComputeNode::AppendRecord(uint32_t partition,
                                                std::span<const uint8_t> record) {
  ClusterMeta& meta = table_[partition];
  const uint64_t rec = meta.record_size;
  if (record.size() != rec) return Status::Internal("AppendRecord: bad record size");
  telemetry::TraceScope append_scope(trace_ctx_, "insert.append");
  append_scope.set_args(partition, rec);

  // Ring 1: FAA-allocate `rec` bytes from this cluster's side of the shared
  // overflow area, and read the partner's counter in the SAME round trip to
  // validate the shared budget (used_A + used_B <= capacity).
  //
  // Retry semantics: a failed FAA did not execute (unreachable/timeout model
  // drops the op), so the whole ring is safely re-issued. Once the FAA has
  // landed, only the partner READ is re-issued — re-running the FAA would
  // double-allocate — and if that read permanently fails the allocation is
  // rolled back before reporting the error.
  auto used_counter_offset = [this](uint32_t cluster) {
    return header_.table_offset +
           static_cast<uint64_t>(cluster) * ClusterMeta::kEncodedSize +
           ClusterMeta::kUsedFieldOffset;
  };
  const bool has_partner = meta.partner != ClusterMeta::kNoPartner;
  uint64_t partner_used = 0;
  uint64_t old_used = 0;
  AlignedBuffer partner_buf(8, 64);
  // Allocation era, captured when the FAA lands: every ring-2 WR is fenced
  // with these epochs, never freshly resolved ones. Otherwise a failover
  // between allocation and fan-out lets the record land at its stale offset
  // on the promoted replica — whose counter hands the same slot to another
  // insert before the dead primary's delta is mirrored — and an ACKED insert
  // silently vanishes under the collision. With captured epochs the stale
  // write fences out and the whole allocation restarts in the new era.
  uint64_t faa_epoch = 0;
  uint64_t record_epoch = 0;
  rdma::RKey faa_rkey{};
  bool faa_done = false;
  RetryBudget era_budget(options_.retry, &clock_, real_backoff_);
  uint32_t era_failures = 0;
  uint64_t remote_offset = 0;
  for (;;) {  // one iteration per allocation era
  {
    RetryBudget budget(options_.retry, &clock_, real_backoff_);
    uint32_t failures = 0;
    for (;;) {
      // Re-resolved every attempt: a failover (or re-replication admission)
      // between attempts moves the ring to the promoted primary / new epoch.
      const SlotRoute ctrl = RouteFor(0);
      Status ring_status;
      if (!faa_done) {
        qp_.PostFetchAdd(ctrl.rkey, used_counter_offset(partition), rec, /*wr_id=*/1,
                         ctrl.epoch);
        if (has_partner) {
          qp_.PostRead(ctrl.rkey, used_counter_offset(meta.partner), partner_buf.span(), 2,
                       ctrl.epoch);
        }
        qp_.RingDoorbell();
        Status faa_status, partner_status;
        rdma::Completion c;
        while (qp_.PollCompletion(&c)) {
          Status st = rdma::QueuePair::ToStatus(c);
          if (c.wr_id == 1) {
            if (st.ok()) old_used = c.atomic_result;
            faa_status = std::move(st);
          } else {
            partner_status = std::move(st);
          }
        }
        if (faa_status.ok()) {
          faa_done = true;
          faa_epoch = ctrl.epoch;
          faa_rkey = ctrl.rkey;
          record_epoch =
              replication_ != nullptr ? replication_->SlotEpoch(meta.node_slot) : 0;
          if (partner_status.ok()) break;
          ring_status = std::move(partner_status);
        } else {
          ring_status = std::move(faa_status);
        }
      } else {
        Status st = qp_.Read(ctrl.rkey, used_counter_offset(meta.partner),
                             partner_buf.span(), ctrl.epoch);
        if (st.ok()) break;
        ring_status = std::move(st);
      }
      if (!IsRetryable(ring_status) || !budget.AllowRetry(++failures)) {
        if (faa_done) {
          // Best effort: un-claim the slot; if even this fails the slot
          // leaks zero-filled and uncommitted, which readers skip.
          (void)qp_.FetchAdd(ctrl.rkey, used_counter_offset(partition),
                             static_cast<uint64_t>(-static_cast<int64_t>(rec)), ctrl.epoch);
        }
        return ring_status;
      }
      // A reachability failure is a failure-detector observation. When the
      // report tips the slot into failover the allocation restarts on the
      // promoted primary: a claim FAAed onto the dead replica is behind the
      // revoked rkey and unreachable by construction, so re-running the FAA
      // cannot double-allocate.
      if (IsReachabilityFailure(ring_status) && NoteSlotFailure(0, nullptr)) {
        faa_done = false;
      }
    }
  }
  if (has_partner) std::memcpy(&partner_used, partner_buf.data(), 8);

  if (old_used + rec + partner_used > meta.overflow_capacity) {
    // Shared area exhausted: roll the allocation back and report Capacity.
    // The caller can run Compact() (compactor.h) to fold overflow into the
    // base blobs and start over with an empty overflow area.
    const SlotRoute ctrl = RouteFor(0);
    auto rollback = qp_.FetchAdd(ctrl.rkey, used_counter_offset(partition),
                                 static_cast<uint64_t>(-static_cast<int64_t>(rec)), ctrl.epoch);
    if (!rollback.ok()) return rollback.status();
    return Status::Capacity("overflow area full for partition " + std::to_string(partition));
  }

  // Ring 2: write the record at its FAA-assigned slot, on the memory
  // instance that owns this cluster's group. The slot position keeps the
  // cluster + overflow contiguous for single-READ loads. Retried on
  // transient failure (a dropped WRITE left the slot zero-filled, so
  // re-writing the same bytes is idempotent). On permanent failure the slot
  // is NOT rolled back: concurrent inserts may have FAAed past us, and a
  // decrement now could hand two writers the same slot — an uncommitted
  // zero slot is benign (readers skip it), a collided slot is not.
  remote_offset = meta.RecordOffset(old_used);
  if (replication_ == nullptr) {
    DHNSW_RETURN_IF_ERROR(WithRetry([&] {
      return qp_.Write(memory_.rkey_for_slot(meta.node_slot), remote_offset, record);
    }));
    break;
  }
  const Status fanout =
      ReplicateRecordWrite(meta.node_slot, remote_offset, record, record_epoch);
  // The FAA above advanced only the primary's counter; mirror the delta
  // onto slot 0's secondaries so a later failover hands out a converged
  // counter, and count the primary's authoritative FAA as its ack.
  const bool counters_converged =
      fanout.ok() &&
      ReplicateCounterAdd(used_counter_offset(partition), rec, faa_epoch);
  if (fanout.ok() && counters_converged) {
    Compute().replica_faa_acks->Add(1);
    break;
  }
  const bool era_moved = replication_->SlotEpoch(0) != faa_epoch ||
                         replication_->SlotEpoch(meta.node_slot) != record_epoch;
  if (!era_moved) return fanout;  // genuine failure in a stable era: no ack
  if (!era_budget.AllowRetry(++era_failures)) {
    return fanout.ok()
               ? Status::Unavailable("insert: slot epoch moved before counter catch-up")
               : fanout;
  }
  // Restart. If the slot-0 primary changed, our claim sits behind the
  // revoked rkey — re-run the FAA on the promoted primary (counter deltas
  // already mirrored leak a little overflow space there; readers skip the
  // uncommitted slots). Same primary (re-replication admission bumped the
  // epoch): the claim stands, refresh the era and re-issue the fan-out —
  // re-writing the same bytes at the same offset is idempotent.
  if (RouteFor(0).rkey != faa_rkey) faa_done = false;
  }  // era loop

  // Local bookkeeping: our cached table entry advances; a cached decoded
  // cluster is now stale and must be re-fetched on next use.
  meta.overflow_used = old_used + rec;
  cache_.Erase(partition);
  return InsertReceipt{partition, remote_offset};
}

Result<InsertReceipt> ComputeNode::Insert(std::span<const float> v, uint32_t global_id) {
  if (!connected()) return Status::Unavailable("ComputeNode: not connected");
  if (v.size() != header_.dim) return Status::InvalidArgument("Insert: dim mismatch");

  // Route with the cached meta-HNSW — no network needed to pick the partition.
  const uint32_t partition = meta_->RouteOne(v);
  std::vector<uint8_t> record(table_[partition].record_size);
  EncodeOverflowRecord(global_id, v, record);
  Result<InsertReceipt> receipt = AppendRecord(partition, record);
  if (receipt.ok()) Compute().inserts->Add(1);
  return receipt;
}

Result<InsertReceipt> ComputeNode::Remove(std::span<const float> v, uint32_t global_id) {
  if (!connected()) return Status::Unavailable("ComputeNode: not connected");
  if (v.size() != header_.dim) return Status::InvalidArgument("Remove: dim mismatch");

  // The tombstone must land in the partition that owns the vector; routing
  // by the vector itself reproduces the assignment/insert decision.
  const uint32_t partition = meta_->RouteOne(v);
  std::vector<uint8_t> record(table_[partition].record_size);
  EncodeOverflowTombstone(global_id, header_.dim, record);
  Result<InsertReceipt> receipt = AppendRecord(partition, record);
  if (receipt.ok()) Compute().removes->Add(1);
  return receipt;
}

Result<ComputeNode::BatchInsertResult> ComputeNode::InsertBatch(
    const VectorSet& vectors, std::span<const uint32_t> global_ids) {
  if (!connected()) return Status::Unavailable("ComputeNode: not connected");
  if (vectors.dim() != header_.dim) {
    return Status::InvalidArgument("InsertBatch: dim mismatch");
  }
  if (vectors.size() != global_ids.size()) {
    return Status::InvalidArgument("InsertBatch: ids/vectors size mismatch");
  }

  // Route everything with the cached meta-HNSW, then group by partition.
  std::unordered_map<uint32_t, std::vector<size_t>> by_partition;
  for (size_t i = 0; i < vectors.size(); ++i) {
    by_partition[meta_->RouteOne(vectors[i])].push_back(i);
  }

  auto used_counter_offset = [this](uint32_t cluster) {
    return header_.table_offset +
           static_cast<uint64_t>(cluster) * ClusterMeta::kEncodedSize +
           ClusterMeta::kUsedFieldOffset;
  };

  BatchInsertResult result;
  for (auto& [partition, members] : by_partition) {
    ClusterMeta& meta = table_[partition];
    const uint64_t rec = meta.record_size;
    const uint64_t want = rec * members.size();

    // Ring 1: one FAA claims space for the whole group; the partner counter
    // rides along to validate the shared budget. Same retry discipline as
    // AppendRecord: re-ring while the FAA has not landed, then re-read only
    // the partner counter, rolling the claim back on permanent failure.
    const bool has_partner = meta.partner != ClusterMeta::kNoPartner;
    uint64_t partner_used = 0;
    uint64_t old_used = 0;
    AlignedBuffer partner_buf(8, 64);
    // Records don't depend on the allocation; encode once per partition.
    std::vector<std::vector<uint8_t>> records(members.size());
    for (size_t j = 0; j < members.size(); ++j) {
      records[j].resize(rec);
      EncodeOverflowRecord(global_ids[members[j]], vectors[members[j]], records[j]);
    }
    // Allocation era (see AppendRecord): the group's ring-2 WRs are fenced
    // with the epochs captured when the FAA landed; a failover mid-fan-out
    // fences the stale writes out and restarts the allocation instead of
    // letting them collide on the promoted replica.
    uint64_t faa_epoch = 0;
    uint64_t record_epoch = 0;
    rdma::RKey faa_rkey{};
    bool faa_done = false;
    bool partition_rejected = false;
    RetryBudget era_budget(options_.retry, &clock_, real_backoff_);
    uint32_t era_failures = 0;
    for (;;) {  // one iteration per allocation era
    {
      RetryBudget budget(options_.retry, &clock_, real_backoff_);
      uint32_t failures = 0;
      for (;;) {
        const SlotRoute ctrl = RouteFor(0);
        Status ring_status;
        if (!faa_done) {
          qp_.PostFetchAdd(ctrl.rkey, used_counter_offset(partition), want, 1, ctrl.epoch);
          if (has_partner) {
            qp_.PostRead(ctrl.rkey, used_counter_offset(meta.partner), partner_buf.span(), 2,
                         ctrl.epoch);
          }
          qp_.RingDoorbell();
          Status faa_status, partner_status;
          rdma::Completion c;
          while (qp_.PollCompletion(&c)) {
            Status st = rdma::QueuePair::ToStatus(c);
            if (c.wr_id == 1) {
              if (st.ok()) old_used = c.atomic_result;
              faa_status = std::move(st);
            } else {
              partner_status = std::move(st);
            }
          }
          if (faa_status.ok()) {
            faa_done = true;
            faa_epoch = ctrl.epoch;
            faa_rkey = ctrl.rkey;
            record_epoch =
                replication_ != nullptr ? replication_->SlotEpoch(meta.node_slot) : 0;
            if (partner_status.ok()) break;
            ring_status = std::move(partner_status);
          } else {
            ring_status = std::move(faa_status);
          }
        } else {
          Status st = qp_.Read(ctrl.rkey, used_counter_offset(meta.partner),
                               partner_buf.span(), ctrl.epoch);
          if (st.ok()) break;
          ring_status = std::move(st);
        }
        if (!IsRetryable(ring_status) || !budget.AllowRetry(++failures)) {
          if (faa_done) {
            (void)qp_.FetchAdd(ctrl.rkey, used_counter_offset(partition),
                               static_cast<uint64_t>(-static_cast<int64_t>(want)), ctrl.epoch);
          }
          return ring_status;
        }
        // See AppendRecord: a failover restarts the allocation on the
        // promoted primary (the old claim sits behind a revoked rkey).
        if (IsReachabilityFailure(ring_status) && NoteSlotFailure(0, nullptr)) {
          faa_done = false;
        }
      }
    }
    if (has_partner) std::memcpy(&partner_used, partner_buf.data(), 8);

    if (old_used + want + partner_used > meta.overflow_capacity) {
      const SlotRoute ctrl = RouteFor(0);
      auto rollback = qp_.FetchAdd(ctrl.rkey, used_counter_offset(partition),
                                   static_cast<uint64_t>(-static_cast<int64_t>(want)), ctrl.epoch);
      if (!rollback.ok()) return rollback.status();
      for (size_t i : members) result.rejected.push_back(i);
      partition_rejected = true;
      break;
    }

    // Ring(s) 2: doorbell-batched WRITEs of the group's records. Records of
    // one partition are adjacent, but each is posted as its own WR (the
    // doorbell coalesces them into one round trip per window). Each WR
    // carries its record index, so only the WRITEs that actually failed are
    // re-issued — dropped WRITEs left their slots zero-filled, making the
    // replay idempotent. Permanent failures leave uncommitted slots that
    // readers skip (see AppendRecord for why no rollback).
    if (replication_ == nullptr) {
      const rdma::RKey shard_rkey = memory_.rkey_for_slot(meta.node_slot);
      std::vector<size_t> to_write(members.size());
      for (size_t j = 0; j < members.size(); ++j) to_write[j] = j;
      RetryBudget budget(options_.retry, &clock_, real_backoff_);
      uint32_t failures = 0;
      for (;;) {
        for (size_t j : to_write) {
          qp_.PostWrite(shard_rkey, meta.RecordOffset(old_used + j * rec), records[j],
                        /*wr_id=*/j);
        }
        qp_.RingDoorbell();
        std::vector<size_t> failed_writes;
        Status first_error;
        rdma::Completion c;
        while (qp_.PollCompletion(&c)) {
          if (c.status == rdma::WcStatus::kSuccess) continue;
          failed_writes.push_back(static_cast<size_t>(c.wr_id));
          if (first_error.ok()) first_error = rdma::QueuePair::ToStatus(c);
        }
        if (failed_writes.empty()) break;
        if (!IsRetryable(first_error) || !budget.AllowRetry(++failures)) {
          return first_error;
        }
        to_write = std::move(failed_writes);
      }
      break;
    }
    // Replicated fan-out: the whole group lands on every live replica of
    // the owning slot, each WRITE acked by a same-ring read-back.
    std::vector<uint64_t> offsets(members.size());
    for (size_t j = 0; j < members.size(); ++j) {
      offsets[j] = meta.RecordOffset(old_used + j * rec);
    }
    const Status fanout =
        ReplicateGroupWrites(meta.node_slot, offsets, records, record_epoch);
    const bool counters_converged =
        fanout.ok() &&
        ReplicateCounterAdd(used_counter_offset(partition), want, faa_epoch);
    if (fanout.ok() && counters_converged) {
      Compute().replica_faa_acks->Add(1);  // the group's authoritative FAA
      break;
    }
    const bool era_moved = replication_->SlotEpoch(0) != faa_epoch ||
                           replication_->SlotEpoch(meta.node_slot) != record_epoch;
    if (!era_moved) return fanout;  // genuine failure in a stable era: no ack
    if (!era_budget.AllowRetry(++era_failures)) {
      return fanout.ok()
                 ? Status::Unavailable("insert: slot epoch moved before counter catch-up")
                 : fanout;
    }
    // See AppendRecord: re-FAA only when the slot-0 primary changed.
    if (RouteFor(0).rkey != faa_rkey) faa_done = false;
    }  // era loop
    if (partition_rejected) continue;

    meta.overflow_used = old_used + want;
    cache_.Erase(partition);
    result.inserted += static_cast<uint32_t>(members.size());
  }
  std::sort(result.rejected.begin(), result.rejected.end());
  Compute().inserts->Add(result.inserted);
  Compute().insert_rejects->Add(result.rejected.size());
  return result;
}

Status ComputeNode::ReplicateRecordWrite(uint32_t slot, uint64_t remote_offset,
                                         std::span<const uint8_t> record,
                                         uint64_t fence_epoch) {
  const std::vector<ReplicaManager::Route> routes = replication_->WriteRoutes(slot);
  AlignedBuffer readback(record.size(), 64);
  for (size_t i = 0; i < routes.size(); ++i) {
    const ReplicaManager::Route& route = routes[i];
    const bool primary = i == 0;
    // WRITE + READ-back in one ring: the fabric executes a ring's WRs in
    // post order, so the READ returns exactly what the WRITE stored. The
    // record bytes carry their own CRC, so byte-identity is the ack.
    Status st = WithRetry([&] {
      if (replication_->SlotEpoch(slot) != fence_epoch) {
        // Non-retryable: retrying the captured epoch against a moved slot
        // only fences out again. The caller restarts the allocation.
        return Status::NotFound("slot epoch moved during write fan-out");
      }
      if (replication_->health(slot, route.replica) == ReplicaHealth::kDead) {
        // Deliberately non-retryable: a replica that died mid-fan-out is
        // skipped (secondary) or fails the insert (primary).
        return Status::NotFound("replica died during write fan-out");
      }
      qp_.PostWrite(route.rkey, remote_offset, record, /*wr_id=*/1, fence_epoch);
      qp_.PostRead(route.rkey, remote_offset, readback.span(), /*wr_id=*/2, fence_epoch);
      qp_.RingDoorbell();
      Status write_status, read_status;
      rdma::Completion c;
      while (qp_.PollCompletion(&c)) {
        Status s = rdma::QueuePair::ToStatus(c);
        if (c.wr_id == 1) {
          write_status = std::move(s);
        } else {
          read_status = std::move(s);
        }
      }
      DHNSW_RETURN_IF_ERROR(std::move(write_status));
      DHNSW_RETURN_IF_ERROR(std::move(read_status));
      if (std::memcmp(readback.data(), record.data(), record.size()) != 0) {
        return Status::Corruption("replica write ack: read-back differs");
      }
      return Status::Ok();
    });
    if (st.ok()) {
      Compute().replica_insert_acks->Add(1);
      continue;
    }
    if (primary) return st;
    replication_->ReportReplicaFailure(slot, route.replica);
  }
  return Status::Ok();
}

Status ComputeNode::ReplicateGroupWrites(uint32_t slot, const std::vector<uint64_t>& offsets,
                                         const std::vector<std::vector<uint8_t>>& records,
                                         uint64_t fence_epoch) {
  const std::vector<ReplicaManager::Route> routes = replication_->WriteRoutes(slot);
  std::vector<AlignedBuffer> readbacks;
  readbacks.reserve(records.size());
  for (const std::vector<uint8_t>& record : records) readbacks.emplace_back(record.size(), 64);
  for (size_t i = 0; i < routes.size(); ++i) {
    const ReplicaManager::Route& route = routes[i];
    const bool primary = i == 0;
    std::vector<size_t> to_write(records.size());
    for (size_t j = 0; j < records.size(); ++j) to_write[j] = j;
    RetryBudget budget(options_.retry, &clock_, real_backoff_);
    uint32_t failures = 0;
    Status replica_status;
    for (;;) {
      if (replication_->SlotEpoch(slot) != fence_epoch) {
        // See ReplicateRecordWrite: stale-offset writes must fence out, and
        // retrying the captured epoch cannot succeed — restart upstream.
        replica_status = Status::NotFound("slot epoch moved during write fan-out");
        break;
      }
      if (replication_->health(slot, route.replica) == ReplicaHealth::kDead) {
        replica_status = Status::NotFound("replica died during write fan-out");
        break;
      }
      // Interleaved WRITE (wr 2j) / READ-back (wr 2j+1) pairs; the doorbell
      // window coalesces them, in-order execution keeps each pair adjacent.
      for (size_t j : to_write) {
        qp_.PostWrite(route.rkey, offsets[j], records[j], /*wr_id=*/2 * j, fence_epoch);
        qp_.PostRead(route.rkey, offsets[j], readbacks[j].span(), /*wr_id=*/2 * j + 1,
                     fence_epoch);
      }
      qp_.RingDoorbell();
      std::vector<size_t> failed;
      Status first_error;
      rdma::Completion c;
      while (qp_.PollCompletion(&c)) {
        if (c.status == rdma::WcStatus::kSuccess) continue;
        failed.push_back(static_cast<size_t>(c.wr_id / 2));
        if (first_error.ok()) first_error = rdma::QueuePair::ToStatus(c);
      }
      // Ack check: a pair whose verbs both "succeeded" must still read back
      // byte-identical before it counts.
      for (size_t j : to_write) {
        if (std::find(failed.begin(), failed.end(), j) != failed.end()) continue;
        if (std::memcmp(readbacks[j].data(), records[j].data(), records[j].size()) != 0) {
          failed.push_back(j);
          if (first_error.ok()) {
            first_error = Status::Corruption("replica write ack: read-back differs");
          }
        }
      }
      if (failed.empty()) break;
      if (!IsRetryable(first_error) || !budget.AllowRetry(++failures)) {
        replica_status = std::move(first_error);
        break;
      }
      std::sort(failed.begin(), failed.end());
      failed.erase(std::unique(failed.begin(), failed.end()), failed.end());
      to_write = std::move(failed);
    }
    if (replica_status.ok()) {
      Compute().replica_insert_acks->Add(records.size());
      continue;
    }
    if (primary) return replica_status;
    replication_->ReportReplicaFailure(slot, route.replica);
  }
  return Status::Ok();
}

bool ComputeNode::ReplicateCounterAdd(uint64_t remote_offset, uint64_t add,
                                      uint64_t fence_epoch) {
  const std::vector<ReplicaManager::Route> routes = replication_->WriteRoutes(0);
  for (size_t i = 1; i < routes.size(); ++i) {
    const ReplicaManager::Route& route = routes[i];
    // FAA (not WRITE): commutative with concurrent inserts from other
    // compute nodes, so catch-ups never lose deltas.
    Status st = WithRetry([&] {
      if (replication_->SlotEpoch(0) != fence_epoch) {
        return Status::NotFound("slot epoch moved during counter catch-up");
      }
      if (replication_->health(0, route.replica) == ReplicaHealth::kDead) {
        return Status::NotFound("replica died during counter catch-up");
      }
      return qp_.FetchAdd(route.rkey, remote_offset, add, fence_epoch).status();
    });
    if (st.ok()) {
      Compute().replica_faa_acks->Add(1);
      continue;
    }
    if (replication_->SlotEpoch(0) != fence_epoch) {
      // Failover (or re-replication admission) moved the slot before this
      // secondary absorbed the delta: the promoted counter may lag the
      // allocation the caller is about to ack. Not survivable by degrading
      // a replica — the caller must restart the allocation in the new epoch.
      return false;
    }
    // A secondary that cannot absorb the catch-up is degraded, never a
    // reason to fail the insert the primary already committed.
    replication_->ReportReplicaFailure(0, route.replica);
  }
  return true;
}

Status ComputeNode::Reconnect(MemoryNodeHandle memory) {
  memory_ = memory;
  meta_.reset();
  table_.clear();
  cache_.Clear();
  return Connect();
}

}  // namespace dhnsw
