#include "core/engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/rng.h"
#include "core/snapshot.h"
#include "index/pq.h"

namespace dhnsw {

DhnswConfig DhnswConfig::Defaults(Metric metric) {
  DhnswConfig config;
  config.meta.metric = metric;
  config.sub_hnsw.metric = metric;
  config.compute.sub_hnsw_template.metric = metric;
  return config;
}

Status DhnswEngine::ConnectComputePool(const DhnswConfig& config) {
  ComputeOptions copts = config.compute;
  copts.sub_hnsw_template.metric = config.sub_hnsw.metric;
  for (size_t i = 0; i < std::max<size_t>(config.num_compute_nodes, 1); ++i) {
    auto node = std::make_unique<ComputeNode>(fabric_.get(), memory_handle_, copts,
                                              "compute-" + std::to_string(i));
    node->AttachReplicaManager(replication_.get());
    DHNSW_RETURN_IF_ERROR(node->Connect());
    computes_.push_back(std::move(node));
  }
  return Status::Ok();
}

Result<DhnswEngine> DhnswEngine::Build(const VectorSet& base, DhnswConfig config) {
  if (base.empty()) return Status::InvalidArgument("DhnswEngine: empty base set");

  // Operational escape hatch: force reproducible builds without a config
  // change (e.g. to re-provision a byte-identical region for an audit).
  if (const char* env = std::getenv("DHNSW_DETERMINISTIC_BUILD");
      env != nullptr && std::strcmp(env, "0") != 0 && env[0] != '\0') {
    config.deterministic_build = true;
  }

  DhnswEngine engine;
  engine.config_ = config;
  engine.dim_ = base.dim();
  engine.next_global_id_ = static_cast<uint32_t>(base.size());

  // 1. Representative sampling + meta graph (§3.1). The k-means scans use
  // the build pool too; they are deterministic for every thread count, so no
  // deterministic_build gate is needed here.
  MetaHnswOptions mopts = config.meta;
  mopts.build_threads = static_cast<uint32_t>(
      std::max<size_t>(mopts.build_threads, config.build_threads));
  DHNSW_ASSIGN_OR_RETURN(MetaHnsw meta, MetaHnsw::Build(base, mopts));
  engine.num_partitions_ = meta.num_partitions();

  // 2. Classify all vectors and build per-partition sub-HNSWs.
  PartitionerOptions popts;
  popts.sub_hnsw = config.sub_hnsw;
  popts.num_threads = config.build_threads;
  popts.deterministic = config.deterministic_build;
  DHNSW_ASSIGN_OR_RETURN(Partitioning parts, PartitionDataset(base, meta, popts));
  engine.partition_sizes_.reserve(parts.clusters.size());
  for (const Cluster& c : parts.clusters) {
    engine.partition_sizes_.push_back(static_cast<uint32_t>(c.index.size()));
  }

  // 2b. Optional PQ codebook: one shared quantizer trained on a seeded
  //     reservoir of residuals (vector - owning representative), attached to
  //     the meta so Provision writes codes sections and every compute node
  //     receives the codebook inside the meta blob.
  if (config.pq.enabled) {
    if (config.sub_hnsw.metric == Metric::kCosine) {
      return Status::InvalidArgument("PqConfig: cosine metric is not supported by ADC");
    }
    if (config.pq.m == 0 || engine.dim_ % config.pq.m != 0) {
      return Status::InvalidArgument("PqConfig: m must divide dim");
    }
    const uint32_t dim = engine.dim_;
    const size_t cap = config.pq.train_sample_cap == 0
                           ? base.size()
                           : std::min<size_t>(config.pq.train_sample_cap, base.size());
    std::vector<float> samples;
    samples.reserve(cap * dim);
    Xoshiro256 rng(config.pq.seed);
    size_t seen = 0;
    std::vector<float> residual(dim);
    for (uint32_t c = 0; c < parts.clusters.size(); ++c) {
      const std::span<const float> center = meta.index().vector(c);
      const auto& members = parts.clusters[c].index;
      for (uint32_t local = 0; local < members.size(); ++local) {
        const std::span<const float> v = members.vector(local);
        for (uint32_t d = 0; d < dim; ++d) residual[d] = v[d] - center[d];
        // Algorithm R over the fixed cluster-major visit order: deterministic
        // for a given (dataset, partitioning, seed).
        if (samples.size() < cap * dim) {
          samples.insert(samples.end(), residual.begin(), residual.end());
        } else {
          const uint64_t slot = rng.NextBounded(seen + 1);
          if (slot < cap) {
            std::copy(residual.begin(), residual.end(),
                      samples.begin() + static_cast<size_t>(slot) * dim);
          }
        }
        ++seen;
      }
    }
    DHNSW_ASSIGN_OR_RETURN(
        ProductQuantizer quantizer,
        ProductQuantizer::Train(dim, config.pq.m, samples, config.pq.train_iterations,
                                config.pq.seed));
    meta.set_quantizer(std::move(quantizer));
  }

  // 3. Fabric + memory instance + RDMA-friendly layout (§3.2).
  engine.fabric_ = std::make_unique<rdma::Fabric>(config.nic, config.transport);
  engine.memory_ = std::make_unique<MemoryNode>(engine.fabric_.get());
  DHNSW_RETURN_IF_ERROR(engine.memory_->Provision(
      meta, parts.clusters, config.layout, /*layout_version=*/0,
      static_cast<uint32_t>(std::max<size_t>(config.num_memory_nodes, 1)),
      config.build_threads));
  engine.memory_handle_ = engine.memory_->handle();
  engine.meta_blob_bytes_ = engine.memory_->plan().header.meta_blob_size;

  // 3b. Replication: clone every shard region onto factor-1 extra memory
  //     nodes and fence the whole pool at epoch 1.
  if (config.replication.enabled()) {
    engine.replication_ =
        std::make_unique<ReplicaManager>(engine.fabric_.get(), config.replication);
    DHNSW_RETURN_IF_ERROR(engine.replication_->ProvisionReplicas(engine.memory_handle_));
  }

  // 4. Compute pool: each instance connects and caches the meta-HNSW.
  DHNSW_RETURN_IF_ERROR(engine.ConnectComputePool(config));
  telemetry::DefaultRegistry().GetCounter("dhnsw_engine_builds_total")->Add(1);
  return engine;
}

Result<DhnswEngine> DhnswEngine::BuildFromSnapshot(const std::string& path,
                                                   DhnswConfig config,
                                                   uint32_t next_global_id) {
  DhnswEngine engine;
  engine.config_ = config;
  engine.fabric_ = std::make_unique<rdma::Fabric>(config.nic, config.transport);
  DHNSW_ASSIGN_OR_RETURN(engine.memory_handle_,
                         LoadRegionSnapshot(engine.fabric_.get(), path));
  engine.next_global_id_ = next_global_id;
  if (config.replication.enabled()) {
    engine.replication_ =
        std::make_unique<ReplicaManager>(engine.fabric_.get(), config.replication);
    DHNSW_RETURN_IF_ERROR(engine.replication_->ProvisionReplicas(engine.memory_handle_));
  }
  DHNSW_RETURN_IF_ERROR(engine.ConnectComputePool(config));

  // Restore validation: reject a snapshot that disagrees with what the
  // caller says it should contain — a wrong-dataset snapshot would otherwise
  // connect fine and quietly mis-serve every query.
  const ComputeNode& probe = *engine.computes_.front();
  if (config.expected_dim != 0 && probe.dim() != config.expected_dim) {
    return Status::InvalidArgument(
        "snapshot dim " + std::to_string(probe.dim()) + " disagrees with configured dim " +
        std::to_string(config.expected_dim) + " in " + path);
  }
  if (config.expected_partitions != 0 && probe.num_clusters() != config.expected_partitions) {
    return Status::InvalidArgument("snapshot has " + std::to_string(probe.num_clusters()) +
                                   " partitions, config expects " +
                                   std::to_string(config.expected_partitions) + " in " + path);
  }
  // Internal cross-check: region header vs the decoded meta-HNSW blob.
  if (probe.meta().dim() != probe.dim() ||
      probe.meta().num_partitions() != probe.num_clusters()) {
    return Status::Corruption("snapshot region header disagrees with its meta-HNSW blob in " +
                              path);
  }
  engine.dim_ = engine.computes_.front()->meta().dim();
  engine.num_partitions_ = engine.computes_.front()->num_clusters();
  telemetry::DefaultRegistry().GetCounter("dhnsw_engine_snapshot_restores_total")->Add(1);
  return engine;
}

Result<RouterResult> DhnswEngine::SearchSharded(const VectorSet& queries, size_t k,
                                                uint32_t ef_search,
                                                const RouterOptions& router_options) {
  std::vector<ComputeNode*> pool;
  pool.reserve(computes_.size());
  for (auto& node : computes_) pool.push_back(node.get());
  ClientRouter router(std::move(pool));
  if (router_trace_.enabled()) router.set_trace(&router_trace_);
  return router.SearchBatch(queries, k, ef_search, router_options);
}

Result<uint32_t> DhnswEngine::Insert(std::span<const float> v, size_t via_instance) {
  if (via_instance >= computes_.size()) {
    return Status::InvalidArgument("Insert: bad compute instance");
  }
  const uint32_t id = next_global_id_;
  DHNSW_ASSIGN_OR_RETURN(InsertReceipt receipt, computes_[via_instance]->Insert(v, id));
  (void)receipt;
  ++next_global_id_;
  return id;
}

Result<uint32_t> DhnswEngine::InsertBatch(const VectorSet& vectors,
                                          std::vector<size_t>* rejected,
                                          size_t via_instance) {
  if (via_instance >= computes_.size()) {
    return Status::InvalidArgument("InsertBatch: bad compute instance");
  }
  const uint32_t first_id = next_global_id_;
  std::vector<uint32_t> ids(vectors.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = first_id + static_cast<uint32_t>(i);

  DHNSW_ASSIGN_OR_RETURN(ComputeNode::BatchInsertResult result,
                         computes_[via_instance]->InsertBatch(vectors, ids));
  // Ids stay assigned even for rejected rows (they are simply never stored);
  // keeping the id space monotone avoids renumbering surviving rows.
  next_global_id_ = first_id + static_cast<uint32_t>(vectors.size());
  if (rejected != nullptr) *rejected = std::move(result.rejected);
  return first_id;
}

Status DhnswEngine::Remove(std::span<const float> v, uint32_t global_id,
                           size_t via_instance) {
  if (via_instance >= computes_.size()) {
    return Status::InvalidArgument("Remove: bad compute instance");
  }
  auto receipt = computes_[via_instance]->Remove(v, global_id);
  return receipt.status();
}

Result<CompactionStats> DhnswEngine::Compact() {
  Compactor compactor(fabric_.get(), config_.sub_hnsw);
  std::unique_ptr<MemoryNode> fresh;
  DHNSW_ASSIGN_OR_RETURN(CompactionStats stats,
                         compactor.Run(memory_handle_, &fresh, config_.layout));
  // Switch over: adopt the new region, then reconnect every instance (the
  // connection manager pushing a new lease). The old region is abandoned.
  memory_ = std::move(fresh);
  memory_handle_ = memory_->handle();
  // Replication restarts from scratch on the fresh region: a new manager
  // re-clones the compacted layout and fences it at epoch 1 (the old
  // replicas described a region that no longer exists).
  if (replication_ != nullptr) {
    replication_ = std::make_unique<ReplicaManager>(fabric_.get(), config_.replication);
    DHNSW_RETURN_IF_ERROR(replication_->ProvisionReplicas(memory_handle_));
  }
  for (auto& node : computes_) {
    node->AttachReplicaManager(replication_.get());
    DHNSW_RETURN_IF_ERROR(node->Reconnect(memory_handle_));
  }
  return stats;
}

Status DhnswEngine::SaveSnapshot(const std::string& path) const {
  Status st = SaveRegionSnapshot(*fabric_, memory_handle_, path);
  if (st.ok()) {
    telemetry::DefaultRegistry().GetCounter("dhnsw_engine_snapshot_saves_total")->Add(1);
  }
  return st;
}

void DhnswEngine::EnableTracing(size_t capacity_per_instance) {
  for (auto& node : computes_) node->EnableTracing(capacity_per_instance);
  if (replication_ != nullptr) replication_->EnableTracing(capacity_per_instance);
  router_trace_.Reserve(capacity_per_instance);
}

void DhnswEngine::ClearTraces() {
  for (auto& node : computes_) node->ClearTrace();
  if (replication_ != nullptr) replication_->ClearTrace();
  router_trace_.Clear();
}

void DhnswEngine::PublishTopologyMetrics() const {
  const Metrics m = CollectMetrics();
  telemetry::MetricRegistry& r = telemetry::DefaultRegistry();
  r.GetGauge("dhnsw_engine_partitions")->Set(m.partitions);
  r.GetGauge("dhnsw_engine_compute_nodes")->Set(m.compute_nodes);
  r.GetGauge("dhnsw_engine_memory_shards")->Set(m.memory_shards);
  r.GetGauge("dhnsw_engine_region_bytes")->Set(static_cast<int64_t>(m.region_bytes_total));
  r.GetGauge("dhnsw_engine_cache_entries")->Set(static_cast<int64_t>(m.cache_entries));
  r.GetGauge("dhnsw_engine_cache_hits")->Set(static_cast<int64_t>(m.cache_hits));
  r.GetGauge("dhnsw_engine_cache_misses")->Set(static_cast<int64_t>(m.cache_misses));
}

telemetry::MetricsSnapshot DhnswEngine::MetricsSnapshot() const {
  PublishTopologyMetrics();
  return telemetry::DefaultRegistry().Snapshot();
}

std::string DhnswEngine::MetricsText() const {
  PublishTopologyMetrics();
  return telemetry::DefaultRegistry().PrometheusText();
}

DhnswEngine::Metrics DhnswEngine::CollectMetrics() const {
  Metrics m;
  m.partitions = num_partitions_;
  m.compute_nodes = static_cast<uint32_t>(computes_.size());
  m.memory_shards = static_cast<uint32_t>(memory_handle_.num_shards());
  for (uint32_t s = 0; s < memory_handle_.num_shards(); ++s) {
    const rdma::MemoryRegion* region =
        fabric_->FindRegion(memory_handle_.rkey_for_slot(s));
    if (region != nullptr) m.region_bytes_total += region->size();
  }
  for (const auto& node : computes_) {
    const rdma::QpStats& qp = node->qp_stats();
    m.qp_total.round_trips += qp.round_trips;
    m.qp_total.work_requests += qp.work_requests;
    m.qp_total.reads += qp.reads;
    m.qp_total.writes += qp.writes;
    m.qp_total.atomics += qp.atomics;
    m.qp_total.bytes_read += qp.bytes_read;
    m.qp_total.bytes_written += qp.bytes_written;
    m.qp_total.sim_network_ns += qp.sim_network_ns;
    m.cache_entries += node->cache_size();
    m.cache_hits += node->cache_hits();
    m.cache_misses += node->cache_misses();
  }
  return m;
}

std::string DhnswEngine::DebugString() const {
  const Metrics m = CollectMetrics();
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "d-HNSW engine: %u partitions, %u compute node(s), %u memory shard(s)\n"
      "  remote memory : %.2f MB registered, meta-HNSW blob %.1f KB\n"
      "  fabric totals : %llu round trips, %llu WRs (%llu reads / %llu writes / "
      "%llu atomics)\n"
      "  bytes         : %.2f MB read, %.2f MB written, %.3f ms simulated "
      "network time\n"
      "  cluster cache : %llu resident, %llu hits, %llu misses",
      m.partitions, m.compute_nodes, m.memory_shards,
      static_cast<double>(m.region_bytes_total) / (1 << 20),
      static_cast<double>(meta_blob_bytes_) / 1024.0,
      static_cast<unsigned long long>(m.qp_total.round_trips),
      static_cast<unsigned long long>(m.qp_total.work_requests),
      static_cast<unsigned long long>(m.qp_total.reads),
      static_cast<unsigned long long>(m.qp_total.writes),
      static_cast<unsigned long long>(m.qp_total.atomics),
      static_cast<double>(m.qp_total.bytes_read) / (1 << 20),
      static_cast<double>(m.qp_total.bytes_written) / (1 << 20),
      static_cast<double>(m.qp_total.sim_network_ns) / 1e6,
      static_cast<unsigned long long>(m.cache_entries),
      static_cast<unsigned long long>(m.cache_hits),
      static_cast<unsigned long long>(m.cache_misses));
  return buf;
}

}  // namespace dhnsw
