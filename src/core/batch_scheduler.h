// Query-aware batched data loading (paper §3.3).
//
// Given a batch of queries, each needing its `b` closest sub-HNSW clusters,
// the scheduler plans cluster movement so that
//   (1) every cluster crosses the network at most ONCE per batch, even when
//       many queries share it,
//   (2) clusters already resident in the compute instance's cache are not
//       re-fetched at all, and
//   (3) at no point do more than `cache_capacity` clusters need to be
//       resident: loading happens in *waves*, and all (query, cluster) work
//       for a wave's clusters completes while they are resident; per-query
//       top-k heaps carry partial results across waves ("results will be
//       temporarily stored for further computation and comparison").
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace dhnsw {

/// One unit of search work: run query `query_index` against `cluster`.
struct WorkItem {
  uint32_t query_index;
  uint32_t cluster;
};

/// One load wave: fetch `to_load`, then process `work` (which references
/// only clusters in `to_load` or clusters already resident).
struct LoadWave {
  std::vector<uint32_t> to_load;
  std::vector<WorkItem> work;
};

struct BatchPlan {
  std::vector<LoadWave> waves;
  uint64_t unique_clusters = 0;  ///< distinct clusters the batch touches
  uint64_t cache_hits = 0;       ///< of those, already resident
  uint64_t dedup_saved_loads = 0;///< loads avoided vs naive (per-pair) loading
};

/// Plans the batch. `clusters_per_query[i]` lists query i's clusters, best
/// first. `is_cached(cluster)` reflects residency at batch start.
/// `cache_capacity` == 0 is treated as capacity 1 (a single staging slot).
BatchPlan PlanBatch(const std::vector<std::vector<uint32_t>>& clusters_per_query,
                    const std::function<bool(uint32_t)>& is_cached,
                    uint32_t cache_capacity);

}  // namespace dhnsw
