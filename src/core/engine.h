// DhnswEngine: the top-level façade a downstream user interacts with.
//
// Owns the simulated fabric, the memory instance, and a pool of compute
// instances; wires up the build pipeline
//     sample -> meta-HNSW -> partition -> sub-HNSWs -> layout -> provision
// and exposes batched search, dynamic insert/remove, overflow compaction,
// and region snapshots. Examples and benches go through this class; tests
// may also reach into the individual modules.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/client_router.h"
#include "core/compactor.h"
#include "core/compute_node.h"
#include "core/memory_node.h"
#include "core/meta_hnsw.h"
#include "core/partitioner.h"
#include "core/replication.h"
#include "dataset/dataset.h"
#include "rdma/fabric.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace dhnsw {

/// Product-quantization deployment knob (tentpole of the `payload=pq` read
/// path). When enabled, Build trains one shared codebook on a deterministic
/// sample of residuals (vector - owning partition's representative) and
/// provisions every cluster blob with an m-byte-per-vector codes section, so
/// compute instances may search with ComputeOptions::payload = kPq /
/// kPqRerank. Raw float rows are still stored after the compressed prefix —
/// `payload` stays a per-instance choice, and re-rank can fetch exact rows.
struct PqConfig {
  bool enabled = false;
  /// Subquantizers per vector (= code bytes per vector). Must divide dim.
  uint32_t m = 8;
  uint32_t train_iterations = 12;  ///< Lloyd's iterations per subspace
  /// Residual sample cap for training (deterministic reservoir over the
  /// partitioned dataset). 0 = train on every residual.
  uint32_t train_sample_cap = 16384;
  uint64_t seed = 0x5eedc0debabeULL;
};

struct DhnswConfig {
  MetaHnswOptions meta;          ///< representative sampling + meta graph
  HnswOptions sub_hnsw;          ///< per-partition graph build parameters
  LayoutConfig layout;           ///< remote-memory layout (overflow sizing)
  rdma::NicModelConfig nic;      ///< fabric cost model
  /// Fabric backend: the deterministic simulator by default, or the real TCP
  /// / verbs transport (transport.h). Leaving the kind unset also honours the
  /// DHNSW_TRANSPORT environment variable; tests that assert simulator-only
  /// semantics pin `transport.kind = rdma::TransportKind::kSim` explicitly.
  rdma::TransportOptions transport;
  ComputeOptions compute;        ///< per-instance query options
  PqConfig pq;                   ///< product-quantized payload sections
  size_t num_compute_nodes = 1;  ///< instances in the compute pool
  size_t num_memory_nodes = 1;   ///< instances in the memory pool (shards)
  /// Worker threads for the whole build pipeline: k-means, classification,
  /// sub-HNSW construction, PQ encode, and serialization. 1 = fully
  /// sequential (the seed behaviour).
  size_t build_threads = 1;
  /// Reproducible builds: keep parallelism to the stages that are
  /// deterministic by construction and force sequential insertion inside
  /// each graph, so the provisioned region is byte-identical for every
  /// `build_threads` value (see DESIGN.md §16). The DHNSW_DETERMINISTIC_BUILD=1
  /// environment variable forces this on at Build time.
  bool deterministic_build = false;
  /// Replicated memory pool: factor > 1 provisions every shard region onto
  /// that many memory nodes and turns on failure detection, epoch-fenced
  /// failover, and online re-replication (core/replication.h). The default
  /// factor 1 keeps the single-copy seed behaviour byte-identical.
  ReplicationOptions replication;
  /// Snapshot restore validation (BuildFromSnapshot only): when non-zero,
  /// the restored region must carry exactly this vector dimensionality /
  /// partition count, else the restore fails with kInvalidArgument instead
  /// of serving an index the caller's queries cannot match. 0 = unchecked.
  uint32_t expected_dim = 0;
  uint32_t expected_partitions = 0;

  /// Convenience: paper-default configuration for a given metric.
  static DhnswConfig Defaults(Metric metric = Metric::kL2);
};

class DhnswEngine {
 public:
  /// Builds the full system over `base`. Global ids are the base-row indices;
  /// inserts continue from base.size().
  static Result<DhnswEngine> Build(const VectorSet& base, DhnswConfig config);

  /// Restores a system from a region snapshot (see snapshot.h) — skips
  /// sampling/partitioning/graph construction entirely. `next_global_id`
  /// must be at least one past any id stored in the snapshot.
  static Result<DhnswEngine> BuildFromSnapshot(const std::string& path, DhnswConfig config,
                                               uint32_t next_global_id);

  DhnswEngine(DhnswEngine&&) = default;
  DhnswEngine& operator=(DhnswEngine&&) = default;

  size_t num_compute_nodes() const noexcept { return computes_.size(); }
  ComputeNode& compute(size_t i = 0) { return *computes_[i]; }
  /// Raw pointers to every compute instance, pool order — the constructor
  /// form ClientRouter and ComputePool take. Never null entries.
  std::vector<ComputeNode*> compute_nodes() {
    std::vector<ComputeNode*> nodes;
    nodes.reserve(computes_.size());
    for (auto& c : computes_) nodes.push_back(c.get());
    return nodes;
  }
  const MemoryNodeHandle& memory_handle() const noexcept { return memory_handle_; }
  /// Present when the engine built (or compacted) the region itself; null
  /// for snapshot-restored engines.
  const MemoryNode* memory_node() const noexcept { return memory_.get(); }
  rdma::Fabric& fabric() noexcept { return *fabric_; }
  /// The replica directory / failure detector, or null when replication is
  /// disabled (factor 1).
  ReplicaManager* replication() noexcept { return replication_.get(); }
  const ReplicaManager* replication() const noexcept { return replication_.get(); }
  uint32_t num_partitions() const noexcept { return num_partitions_; }
  uint32_t dim() const noexcept { return dim_; }
  const std::vector<uint32_t>& partition_sizes() const noexcept { return partition_sizes_; }
  uint64_t meta_blob_bytes() const noexcept { return meta_blob_bytes_; }
  uint32_t next_global_id() const noexcept { return next_global_id_; }

  /// Batched search on compute instance 0 (see ComputeNode::SearchBatch for
  /// per-instance control).
  Result<BatchResult> SearchAll(const VectorSet& queries, size_t k, uint32_t ef_search) {
    return compute(0).SearchAll(queries, k, ef_search);
  }

  /// Load-balanced batched search across the whole compute pool. Pass
  /// RouterOptions{.allow_partial = true} to degrade failed shards to
  /// empty per-query results instead of failing the request.
  Result<RouterResult> SearchSharded(const VectorSet& queries, size_t k, uint32_t ef_search,
                                     const RouterOptions& router_options = {});

  /// Inserts a new vector; assigns and returns its global id.
  /// Routed + written by compute instance `via_instance`.
  Result<uint32_t> Insert(std::span<const float> v, size_t via_instance = 0);

  /// Batched insertion: assigns consecutive global ids to `vectors` and
  /// writes them with per-partition coalesced FAAs + doorbell-batched
  /// WRITEs (see ComputeNode::InsertBatch). Returns the first assigned id;
  /// `rejected` (if non-null) receives the indices that hit Capacity.
  Result<uint32_t> InsertBatch(const VectorSet& vectors,
                               std::vector<size_t>* rejected = nullptr,
                               size_t via_instance = 0);

  /// Tombstone-deletes `global_id`; `v` must be its stored vector (routing
  /// key). Space is physically reclaimed by Compact().
  Status Remove(std::span<const float> v, uint32_t global_id, size_t via_instance = 0);

  /// Folds overflow (inserts + tombstones) into the base blobs, provisions a
  /// fresh region with empty overflow, and reconnects every compute node.
  Result<CompactionStats> Compact();

  /// Persists / restores the current region (see snapshot.h).
  Status SaveSnapshot(const std::string& path) const;

  /// Point-in-time operational counters aggregated across the compute pool.
  /// Kept as a plain struct for existing callers; the same numbers are also
  /// published into the telemetry registry by MetricsSnapshot()/MetricsText()
  /// as dhnsw_engine_* gauges.
  struct Metrics {
    uint32_t partitions = 0;
    uint32_t compute_nodes = 0;
    uint32_t memory_shards = 0;
    uint64_t region_bytes_total = 0;   ///< summed over all shard regions
    rdma::QpStats qp_total;            ///< summed over compute instances
    uint64_t cache_entries = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
  };
  Metrics CollectMetrics() const;

  /// Human-readable one-screen summary (examples, debugging, ops).
  std::string DebugString() const;

  /// --- telemetry (see DESIGN.md "Telemetry subsystem") ---
  /// Enables per-query tracing: every compute instance gets a bounded buffer
  /// of `capacity_per_instance` events (preallocated now, so steady-state
  /// spans never allocate), and SearchSharded records router-level spans
  /// into a separate router buffer of the same capacity. 0 disables.
  void EnableTracing(size_t capacity_per_instance);
  /// Forgets recorded events on every buffer; keeps reservations.
  void ClearTraces();
  /// Per-instance trace (spans recorded by compute instance `instance`).
  const telemetry::TraceBuffer& trace(size_t instance = 0) const {
    return computes_[instance]->trace();
  }
  const telemetry::TraceBuffer& router_trace() const noexcept { return router_trace_; }

  /// Publishes the engine topology (dhnsw_engine_* gauges) into the process
  /// registry, then returns a point-in-time snapshot of every instrument.
  /// With several engines in one process the topology gauges reflect the
  /// engine snapshotted most recently.
  telemetry::MetricsSnapshot MetricsSnapshot() const;
  /// Same, as Prometheus text exposition (the `dhnsw_cli stats` output).
  std::string MetricsText() const;

 private:
  DhnswEngine() = default;

  Status ConnectComputePool(const DhnswConfig& config);
  /// Mirrors CollectMetrics() into dhnsw_engine_* registry gauges.
  void PublishTopologyMetrics() const;

  std::unique_ptr<rdma::Fabric> fabric_;
  std::unique_ptr<MemoryNode> memory_;
  /// Owned here, raw-pointer-attached to every compute node; destroyed after
  /// them is not required (nodes never outlive the engine).
  std::unique_ptr<ReplicaManager> replication_;
  MemoryNodeHandle memory_handle_;
  std::vector<std::unique_ptr<ComputeNode>> computes_;
  DhnswConfig config_;
  uint32_t dim_ = 0;
  uint32_t num_partitions_ = 0;
  uint32_t next_global_id_ = 0;
  uint64_t meta_blob_bytes_ = 0;
  std::vector<uint32_t> partition_sizes_;
  telemetry::TraceBuffer router_trace_;
};

}  // namespace dhnsw
