#include "core/client_router.h"

#include <algorithm>
#include <thread>

#include "telemetry/metrics.h"

namespace dhnsw {

namespace {

struct RouterInstruments {
  telemetry::Counter* requests;
  telemetry::Counter* queries;
  telemetry::Counter* shards;
  telemetry::Counter* degraded_shards;
  telemetry::Histogram* batch_latency_us;
};

const RouterInstruments& Router() {
  static const RouterInstruments instruments = [] {
    telemetry::MetricRegistry& r = telemetry::DefaultRegistry();
    return RouterInstruments{
        r.GetCounter("dhnsw_router_requests_total"),
        r.GetCounter("dhnsw_router_queries_total"),
        r.GetCounter("dhnsw_router_shards_total"),
        r.GetCounter("dhnsw_router_degraded_shards_total"),
        r.GetHistogram("dhnsw_router_batch_latency_us"),
    };
  }();
  return instruments;
}

}  // namespace

Result<RouterResult> ClientRouter::SearchBatch(const VectorSet& queries, size_t k,
                                               uint32_t ef_search,
                                               const RouterOptions& router_options) {
  const size_t n = queries.size();
  const size_t shards = std::min(pool_.size(), std::max<size_t>(n, 1));
  const size_t per_shard = (n + shards - 1) / std::max<size_t>(shards, 1);

  std::vector<ShardPlan> plan(shards);
  for (size_t s = 0; s < shards; ++s) {
    plan[s].begin = s * per_shard;
    plan[s].count = plan[s].begin >= n ? 0 : std::min(per_shard, n - plan[s].begin);
  }
  return RunShards(queries, k, ef_search, router_options, plan);
}

Result<RouterResult> ClientRouter::SearchBatchWeighted(const VectorSet& queries, size_t k,
                                                       uint32_t ef_search,
                                                       std::span<const uint64_t> outstanding,
                                                       const RouterOptions& router_options) {
  if (outstanding.size() != pool_.size()) {
    return Status::InvalidArgument("router: outstanding size != pool size");
  }
  const size_t n = queries.size();
  const size_t shards = pool_.size();
  if (shards == 0) return Status::InvalidArgument("router: empty compute pool");

  // Shard sizes proportional to 1/(1+outstanding), summed to exactly n via
  // largest remainder (ties to the lowest index, keeping the plan a pure
  // function of the inputs).
  std::vector<double> weight(shards);
  double total = 0.0;
  for (size_t s = 0; s < shards; ++s) {
    weight[s] = 1.0 / (1.0 + static_cast<double>(outstanding[s]));
    total += weight[s];
  }
  std::vector<ShardPlan> plan(shards);
  std::vector<std::pair<double, size_t>> remainder(shards);
  size_t assigned = 0;
  for (size_t s = 0; s < shards; ++s) {
    const double ideal = static_cast<double>(n) * weight[s] / total;
    plan[s].count = static_cast<size_t>(ideal);
    assigned += plan[s].count;
    remainder[s] = {ideal - static_cast<double>(plan[s].count), s};
  }
  std::sort(remainder.begin(), remainder.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (size_t i = 0; assigned < n; ++i, ++assigned) {
    ++plan[remainder[i % shards].second].count;
  }
  size_t begin = 0;
  for (size_t s = 0; s < shards; ++s) {
    plan[s].begin = begin;
    begin += plan[s].count;
  }
  return RunShards(queries, k, ef_search, router_options, plan);
}

Result<RouterResult> ClientRouter::RunShards(const VectorSet& queries, size_t k,
                                             uint32_t ef_search,
                                             const RouterOptions& router_options,
                                             const std::vector<ShardPlan>& plan) {
  if (pool_.empty()) return Status::InvalidArgument("router: empty compute pool");
  for (ComputeNode* node : pool_) {
    if (node == nullptr || !node->connected()) {
      return Status::Unavailable("router: compute node not connected");
    }
  }

  // Router spans have no SimClock (instances each own theirs), so they carry
  // wall time only; written exclusively from this thread.
  telemetry::TraceContext trace{trace_buffer_, nullptr, ++request_seq_};
  telemetry::TraceScope request_scope(trace, "router.request");
  request_scope.set_args(queries.size(), k);

  const size_t n = queries.size();
  const size_t shards = plan.size();

  struct Shard {
    size_t begin = 0;
    size_t count = 0;
    Result<BatchResult> result = Status::Internal("shard never ran");
  };
  std::vector<Shard> work(shards);
  for (size_t s = 0; s < shards; ++s) {
    work[s].begin = plan[s].begin;
    work[s].count = plan[s].count;
  }

  auto run_shard = [this, &work, &queries, k, ef_search](size_t s) {
    if (work[s].count > 0) {
      work[s].result =
          pool_[s]->SearchBatch(queries, work[s].begin, work[s].count, k, ef_search);
    } else {
      work[s].result = BatchResult{};
    }
  };

  if (execution_ == RouterExecution::kConcurrent) {
    // One thread per instance: instances are independent (own QP/cache/
    // clock), mirroring the paper's per-instance query workers. Shard spans
    // are appended after the join (from this thread) without wall times —
    // per-shard walls overlap and would double-count under parallelism.
    std::vector<std::thread> threads;
    threads.reserve(shards);
    for (size_t s = 0; s < shards; ++s) threads.emplace_back(run_shard, s);
    for (auto& t : threads) t.join();
    for (size_t s = 0; s < shards; ++s) {
      trace.Event("router.shard", static_cast<uint32_t>(s), work[s].begin, work[s].count);
    }
  } else {
    // Isolated: each shard timed with the whole host to itself, so shard
    // wall-times model per-instance dedicated CPUs.
    for (size_t s = 0; s < shards; ++s) {
      telemetry::TraceScope shard_scope(trace, "router.shard", static_cast<uint32_t>(s));
      shard_scope.set_args(work[s].begin, work[s].count);
      run_shard(s);
    }
  }

  RouterResult out;
  out.results.resize(n);
  out.statuses.assign(n, Status::Ok());
  for (size_t s = 0; s < shards; ++s) {
    if (!work[s].result.ok()) {
      // A shard-level failure (its instance could not serve the batch at
      // all). With allow_partial its queries degrade to empty results that
      // carry the error; the other shards' answers survive untouched.
      if (!router_options.allow_partial) return work[s].result.status();
      Router().degraded_shards->Add(1);
      for (size_t i = 0; i < work[s].count; ++i) {
        out.statuses[work[s].begin + i] = work[s].result.status();
      }
      out.per_instance.emplace_back();
      continue;
    }
    BatchResult& shard_result = work[s].result.value();
    for (size_t i = 0; i < work[s].count; ++i) {
      out.results[work[s].begin + i] = std::move(shard_result.results[i]);
      if (i < shard_result.statuses.size()) {
        out.statuses[work[s].begin + i] = std::move(shard_result.statuses[i]);
      }
    }
    const BatchBreakdown& b = shard_result.breakdown;
    out.per_instance.push_back(b);
    const double shard_latency =
        b.network_us + b.meta_us + b.sub_us + b.deserialize_us;
    out.batch_latency_us = std::max(out.batch_latency_us, shard_latency);
  }
  out.throughput_qps = out.batch_latency_us > 0.0
                           ? static_cast<double>(n) / (out.batch_latency_us / 1e6)
                           : 0.0;

  const RouterInstruments& metrics = Router();
  metrics.requests->Add(1);
  metrics.queries->Add(n);
  metrics.shards->Add(shards);
  metrics.batch_latency_us->Record(static_cast<uint64_t>(out.batch_latency_us));
  return out;
}

}  // namespace dhnsw
