#include "core/replication.h"

#include <algorithm>
#include <cstring>

#include "common/crc32.h"
#include "telemetry/metrics.h"

namespace dhnsw {

namespace {

// Control-plane instruments: probes, failovers, and streaming all sit far
// from the query hot path, so per-call Add/Set through static pointers is
// fine (same idiom as FabricInstruments).
struct ReplicationInstruments {
  telemetry::Gauge* factor;
  telemetry::Gauge* epoch;
  telemetry::Gauge* min_alive;
  telemetry::Counter* probes;
  telemetry::Counter* probe_misses;
  telemetry::Counter* suspects;
  telemetry::Counter* deaths;
  telemetry::Counter* failovers;
  telemetry::Counter* rereplications;
  telemetry::Counter* copy_chunks;
  telemetry::Counter* copied_bytes;
};

const ReplicationInstruments& Instruments() {
  static const ReplicationInstruments instruments = [] {
    telemetry::MetricRegistry& r = telemetry::DefaultRegistry();
    return ReplicationInstruments{
        r.GetGauge("dhnsw_replication_factor"),
        r.GetGauge("dhnsw_replication_epoch"),
        r.GetGauge("dhnsw_replication_min_alive_replicas"),
        r.GetCounter("dhnsw_replication_probes_total"),
        r.GetCounter("dhnsw_replication_probe_misses_total"),
        r.GetCounter("dhnsw_replication_suspects_total"),
        r.GetCounter("dhnsw_replication_deaths_total"),
        r.GetCounter("dhnsw_replication_failovers_total"),
        r.GetCounter("dhnsw_replication_rereplications_total"),
        r.GetCounter("dhnsw_replication_copy_chunks_total"),
        r.GetCounter("dhnsw_replication_copied_bytes_total"),
    };
  }();
  return instruments;
}

}  // namespace

std::string_view ReplicaHealthName(ReplicaHealth health) noexcept {
  switch (health) {
    case ReplicaHealth::kAlive:
      return "alive";
    case ReplicaHealth::kSuspected:
      return "suspected";
    case ReplicaHealth::kDead:
      return "dead";
  }
  return "?";
}

ReplicaManager::ReplicaManager(rdma::Fabric* fabric, ReplicationOptions options)
    : fabric_(fabric), options_(options), qp_(fabric, &clock_) {
  if (options_.factor == 0) options_.factor = 1;
  if (options_.dead_after_misses < options_.suspect_after_misses) {
    options_.dead_after_misses = options_.suspect_after_misses;
  }
  trace_ctx_ = telemetry::TraceContext{&trace_buffer_, &clock_, 0};
  if (!fabric_->transport().is_sim()) {
    trace_buffer_.set_transport_label(std::string(fabric_->transport().name()));
  }
}

Status ReplicaManager::ProvisionReplicas(const MemoryNodeHandle& handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_.clear();
  const size_t num_slots = handle.num_shards();
  slots_.resize(num_slots);
  for (uint32_t s = 0; s < num_slots; ++s) {
    Slot& slot = slots_[s];
    Replica original;
    original.node = handle.shard_rkeys.empty() ? handle.node : handle.shard_nodes[s];
    original.rkey = handle.rkey_for_slot(s);
    slot.replicas.push_back(original);

    const rdma::MemoryRegion* src = fabric_->FindRegion(original.rkey);
    if (src == nullptr) {
      return Status::InvalidArgument("ProvisionReplicas: slot " + std::to_string(s) +
                                     " names an unknown region");
    }
    const uint64_t size = src->size();
    for (uint32_t r = 1; r < options_.factor; ++r) {
      const rdma::NodeId node = fabric_->AddNode("memory-node-r" + std::to_string(r) + "-slot-" +
                                                 std::to_string(s));
      DHNSW_ASSIGN_OR_RETURN(const rdma::RKey rkey, fabric_->RegisterMemory(node, size));
      DHNSW_RETURN_IF_ERROR(StreamRegionLocked(original.rkey, rkey, size));
      slot.replicas.push_back(Replica{node, rkey, ReplicaHealth::kAlive, 0});
    }
    // Admit the whole replica set at epoch 1: from here on every data-path
    // access is fenced, and a replica that later dies is revoked outright.
    slot.epoch = 1;
    for (const Replica& replica : slot.replicas) {
      fabric_->SetRegionEpoch(replica.rkey, slot.epoch);
    }
  }
  Instruments().factor->Set(static_cast<int64_t>(options_.factor));
  PublishGaugesLocked();
  return Status::Ok();
}

ReplicaManager::Route ReplicaManager::PrimaryRoute(uint32_t slot) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (slot >= slots_.size()) return Route{};
  const Slot& s = slots_[slot];
  const Replica& primary = s.replicas[s.primary];
  return Route{primary.rkey, s.epoch, s.primary, primary.health != ReplicaHealth::kDead};
}

std::vector<ReplicaManager::Route> ReplicaManager::WriteRoutes(uint32_t slot) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Route> routes;
  if (slot >= slots_.size()) return routes;
  const Slot& s = slots_[slot];
  routes.push_back(Route{s.replicas[s.primary].rkey, s.epoch, s.primary,
                         s.replicas[s.primary].health != ReplicaHealth::kDead});
  for (uint32_t r = 0; r < s.replicas.size(); ++r) {
    if (r == s.primary || s.replicas[r].health == ReplicaHealth::kDead) continue;
    routes.push_back(Route{s.replicas[r].rkey, s.epoch, r, true});
  }
  return routes;
}

size_t ReplicaManager::num_slots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size();
}

uint64_t ReplicaManager::SlotEpoch(uint32_t slot) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slot < slots_.size() ? slots_[slot].epoch : 0;
}

ReplicaHealth ReplicaManager::health(uint32_t slot, uint32_t replica) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (slot >= slots_.size() || replica >= slots_[slot].replicas.size()) {
    return ReplicaHealth::kDead;
  }
  return slots_[slot].replicas[replica].health;
}

uint32_t ReplicaManager::AliveCount(uint32_t slot) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (slot >= slots_.size()) return 0;
  uint32_t alive = 0;
  for (const Replica& replica : slots_[slot].replicas) {
    if (replica.health == ReplicaHealth::kAlive) ++alive;
  }
  return alive;
}

bool ReplicaManager::ProbeLocked(const Replica& replica) {
  uint8_t probe[8] = {};
  Instruments().probes->Add(1);
  const Status status = qp_.Read(replica.rkey, 0, std::span<uint8_t>(probe, sizeof probe));
  if (!status.ok()) Instruments().probe_misses->Add(1);
  return status.ok();
}

uint32_t ReplicaManager::ApplyThresholdsLocked(uint32_t slot, uint32_t replica) {
  Replica& r = slots_[slot].replicas[replica];
  if (r.health == ReplicaHealth::kDead) return 0;
  if (r.misses >= options_.dead_after_misses) {
    MarkDeadLocked(slot, replica);
    return 1;
  }
  if (r.misses >= options_.suspect_after_misses && r.health == ReplicaHealth::kAlive) {
    r.health = ReplicaHealth::kSuspected;
    Instruments().suspects->Add(1);
    trace_ctx_.Event("replication.suspect", telemetry::TraceEvent::kNoQuery, slot, replica);
    return 1;
  }
  return 0;
}

void ReplicaManager::MarkDeadLocked(uint32_t slot, uint32_t replica) {
  Slot& s = slots_[slot];
  Replica& r = s.replicas[replica];
  if (r.health == ReplicaHealth::kDead) return;
  r.health = ReplicaHealth::kDead;
  Instruments().deaths->Add(1);
  // Revocation is the fencing half of failover: even if the node comes back
  // and a compute instance still holds this rkey + an old epoch, the fabric
  // refuses the access (kFenced) — the stale primary can neither serve reads
  // nor absorb writes.
  fabric_->RevokeRegion(r.rkey);
  trace_ctx_.Event("replication.death", telemetry::TraceEvent::kNoQuery, slot, replica);
  if (replica == s.primary) FailoverLocked(slot);
  PublishGaugesLocked();
}

void ReplicaManager::FailoverLocked(uint32_t slot) {
  Slot& s = slots_[slot];
  uint32_t next = s.primary;
  for (ReplicaHealth want : {ReplicaHealth::kAlive, ReplicaHealth::kSuspected}) {
    for (uint32_t r = 0; r < s.replicas.size(); ++r) {
      if (s.replicas[r].health == want) {
        next = r;
        break;
      }
    }
    if (next != s.primary) break;
  }
  if (next == s.primary) {
    // Every replica of the slot is dead. Leave the primary pointing at the
    // revoked region: accesses fail fenced -> Unavailable, and the router's
    // allow_partial policy decides whether the query degrades or errors.
    return;
  }
  s.primary = next;
  ++s.epoch;
  // Re-fence the survivors at the new epoch: compute nodes still stamping the
  // old epoch get kFenced and are forced through a directory refresh before
  // they can touch any replica again.
  for (const Replica& replica : s.replicas) {
    if (replica.health != ReplicaHealth::kDead) {
      fabric_->SetRegionEpoch(replica.rkey, s.epoch);
    }
  }
  Instruments().failovers->Add(1);
  trace_ctx_.Event("replication.failover", telemetry::TraceEvent::kNoQuery, slot, s.epoch);
}

uint32_t ReplicaManager::Tick() {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_.Advance(options_.probe_interval_ns);
  uint32_t transitions = 0;
  for (uint32_t slot = 0; slot < slots_.size(); ++slot) {
    for (uint32_t r = 0; r < slots_[slot].replicas.size(); ++r) {
      Replica& replica = slots_[slot].replicas[r];
      if (replica.health == ReplicaHealth::kDead) continue;
      if (ProbeLocked(replica)) {
        if (replica.misses > 0 || replica.health == ReplicaHealth::kSuspected) {
          replica.misses = 0;
          if (replica.health == ReplicaHealth::kSuspected) {
            replica.health = ReplicaHealth::kAlive;
            trace_ctx_.Event("replication.recover", telemetry::TraceEvent::kNoQuery, slot, r);
            ++transitions;
          }
        }
      } else {
        ++replica.misses;
        transitions += ApplyThresholdsLocked(slot, r);
      }
    }
  }
  PublishGaugesLocked();
  return transitions;
}

bool ReplicaManager::ReportUnreachable(uint32_t slot) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  Replica& primary = s.replicas[s.primary];
  if (primary.health == ReplicaHealth::kDead) return false;
  const uint64_t epoch_before = s.epoch;
  ++primary.misses;
  if (ProbeLocked(primary)) {
    // The region answers the manager: the reporter's failure was a stale
    // epoch (post-failover/admission) or a transient drop. Clear the strike —
    // the reporter should refresh its route and retry.
    primary.misses = 0;
    if (primary.health == ReplicaHealth::kSuspected) {
      primary.health = ReplicaHealth::kAlive;
      trace_ctx_.Event("replication.recover", telemetry::TraceEvent::kNoQuery, slot, s.primary);
    }
    PublishGaugesLocked();
    return false;
  }
  ++primary.misses;  // the confirm probe itself missed
  ApplyThresholdsLocked(slot, s.primary);
  PublishGaugesLocked();
  return s.epoch != epoch_before;
}

void ReplicaManager::ReportReplicaFailure(uint32_t slot, uint32_t replica) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (slot >= slots_.size() || replica >= slots_[slot].replicas.size()) return;
  Replica& r = slots_[slot].replicas[replica];
  if (r.health == ReplicaHealth::kDead) return;
  ++r.misses;
  ApplyThresholdsLocked(slot, replica);
  PublishGaugesLocked();
}

Status ReplicaManager::StreamRegionLocked(rdma::RKey src, rdma::RKey dst, uint64_t size) {
  telemetry::TraceScope span(trace_ctx_, "replication.copy");
  const uint64_t chunk_bytes = std::max<uint64_t>(1, options_.rereplicate_chunk_bytes);
  const uint32_t window = std::max<uint32_t>(1, options_.rereplicate_doorbell);
  const uint64_t num_chunks = (size + chunk_bytes - 1) / chunk_bytes;
  std::vector<uint32_t> chunk_crcs(num_chunks, 0);
  std::vector<std::vector<uint8_t>> buffers(window);

  const auto chunk_len = [&](uint64_t chunk) {
    const uint64_t offset = chunk * chunk_bytes;
    return std::min<uint64_t>(chunk_bytes, size - offset);
  };
  const auto drain = [&](const char* phase) -> Status {
    for (const rdma::Completion& c : qp_.Flush()) {
      const Status status = rdma::QueuePair::ToStatus(c);
      if (!status.ok()) {
        return Status(status.code(), std::string("re-replication ") + phase +
                                         " failed: " + std::string(status.message()));
      }
    }
    return Status::Ok();
  };

  // Copy: READ a window of chunks off the source, CRC them host-side, WRITE
  // them to the destination — each phase one doorbell ring.
  for (uint64_t base = 0; base < num_chunks; base += window) {
    const uint32_t batch = static_cast<uint32_t>(std::min<uint64_t>(window, num_chunks - base));
    for (uint32_t i = 0; i < batch; ++i) {
      buffers[i].resize(chunk_len(base + i));
      qp_.PostRead(src, (base + i) * chunk_bytes, buffers[i], /*wr_id=*/base + i);
    }
    DHNSW_RETURN_IF_ERROR(drain("source read"));
    for (uint32_t i = 0; i < batch; ++i) {
      chunk_crcs[base + i] = Crc32c(buffers[i]);
      qp_.PostWrite(dst, (base + i) * chunk_bytes, buffers[i], /*wr_id=*/base + i);
      Instruments().copy_chunks->Add(1);
      Instruments().copied_bytes->Add(buffers[i].size());
    }
    DHNSW_RETURN_IF_ERROR(drain("destination write"));
  }

  // Verify: re-read every destination chunk and check it against the CRC
  // recorded at copy time before the replica is admitted.
  for (uint64_t base = 0; base < num_chunks; base += window) {
    const uint32_t batch = static_cast<uint32_t>(std::min<uint64_t>(window, num_chunks - base));
    for (uint32_t i = 0; i < batch; ++i) {
      buffers[i].resize(chunk_len(base + i));
      qp_.PostRead(dst, (base + i) * chunk_bytes, buffers[i], /*wr_id=*/base + i);
    }
    DHNSW_RETURN_IF_ERROR(drain("verify read"));
    for (uint32_t i = 0; i < batch; ++i) {
      if (Crc32c(buffers[i]) != chunk_crcs[base + i]) {
        return Status::Corruption("re-replication verify failed: chunk " +
                                  std::to_string(base + i) + " CRC mismatch");
      }
    }
  }
  span.set_args(num_chunks, size);
  return Status::Ok();
}

Status ReplicaManager::Rereplicate(uint32_t slot) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (slot >= slots_.size()) {
    return Status::InvalidArgument("Rereplicate: unknown slot " + std::to_string(slot));
  }
  Slot& s = slots_[slot];
  uint32_t non_dead = 0;
  for (const Replica& replica : s.replicas) {
    if (replica.health != ReplicaHealth::kDead) ++non_dead;
  }
  if (non_dead >= options_.factor) return Status::Ok();
  const Replica& source = s.replicas[s.primary];
  if (source.health == ReplicaHealth::kDead) {
    return Status::Unavailable("Rereplicate: no live replica of slot " + std::to_string(slot) +
                               " to stream from");
  }
  const rdma::MemoryRegion* region = fabric_->FindRegion(source.rkey);
  if (region == nullptr) {
    return Status::Internal("Rereplicate: primary region vanished");
  }
  const uint64_t size = region->size();
  const rdma::NodeId node =
      fabric_->AddNode("memory-node-r" + std::to_string(s.replicas.size()) + "-slot-" +
                       std::to_string(slot));
  DHNSW_ASSIGN_OR_RETURN(const rdma::RKey rkey, fabric_->RegisterMemory(node, size));
  DHNSW_RETURN_IF_ERROR(StreamRegionLocked(source.rkey, rkey, size));
  // Atomic admission: the new copy becomes visible only together with the
  // epoch bump, so no compute node can read it under the old epoch and no
  // write fan-out can miss it under the new one.
  ++s.epoch;
  s.replicas.push_back(Replica{node, rkey, ReplicaHealth::kAlive, 0});
  for (const Replica& replica : s.replicas) {
    if (replica.health != ReplicaHealth::kDead) {
      fabric_->SetRegionEpoch(replica.rkey, s.epoch);
    }
  }
  Instruments().rereplications->Add(1);
  trace_ctx_.Event("replication.admit", telemetry::TraceEvent::kNoQuery, slot, s.epoch);
  PublishGaugesLocked();
  return Status::Ok();
}

Status ReplicaManager::RereplicateAll() {
  const size_t slots = num_slots();
  for (uint32_t slot = 0; slot < slots; ++slot) {
    uint32_t missing = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      uint32_t non_dead = 0;
      for (const Replica& replica : slots_[slot].replicas) {
        if (replica.health != ReplicaHealth::kDead) ++non_dead;
      }
      missing = non_dead < options_.factor ? options_.factor - non_dead : 0;
    }
    for (uint32_t i = 0; i < missing; ++i) {
      DHNSW_RETURN_IF_ERROR(Rereplicate(slot));
    }
  }
  return Status::Ok();
}

std::string ReplicaManager::TopologyText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "replication factor " + std::to_string(options_.factor) + ", " +
                    std::to_string(slots_.size()) + " slot(s)\n";
  for (uint32_t slot = 0; slot < slots_.size(); ++slot) {
    const Slot& s = slots_[slot];
    out += "slot " + std::to_string(slot) + ": epoch " + std::to_string(s.epoch) +
           ", primary replica " + std::to_string(s.primary) + "\n";
    for (uint32_t r = 0; r < s.replicas.size(); ++r) {
      const Replica& replica = s.replicas[r];
      out += "  replica " + std::to_string(r) + ": node " + std::to_string(replica.node) + " (" +
             fabric_->NodeName(replica.node) + ") " + std::string(ReplicaHealthName(replica.health));
      if (fabric_->IsRegionRevoked(replica.rkey)) out += " [revoked]";
      if (r == s.primary) out += " *";
      out += "\n";
    }
  }
  return out;
}

void ReplicaManager::PublishGaugesLocked() const {
  uint64_t max_epoch = 0;
  int64_t min_alive = slots_.empty() ? 0 : INT64_MAX;
  for (const Slot& s : slots_) {
    max_epoch = std::max(max_epoch, s.epoch);
    int64_t alive = 0;
    for (const Replica& replica : s.replicas) {
      if (replica.health == ReplicaHealth::kAlive) ++alive;
    }
    min_alive = std::min(min_alive, alive);
  }
  Instruments().epoch->Set(static_cast<int64_t>(max_epoch));
  Instruments().min_alive->Set(min_alive);
}

}  // namespace dhnsw
