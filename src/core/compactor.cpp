#include "core/compactor.h"

#include <algorithm>
#include <unordered_set>

#include "common/sim_clock.h"
#include "common/timer.h"
#include "core/meta_hnsw.h"
#include "rdma/queue_pair.h"
#include "serialize/cluster_blob.h"
#include "serialize/overflow.h"
#include "telemetry/metrics.h"

namespace dhnsw {
namespace {

/// Rebuilds one cluster: base graph minus tombstones, plus live overflow.
/// Vectors survive in (base order, then insert order), re-linked by a fresh
/// HNSW build so the folded inserts get first-class graph edges.
Cluster RebuildCluster(const Cluster& old_cluster,
                       const std::vector<OverflowRecord>& records,
                       const HnswOptions& sub_template,
                       CompactionStats* stats) {
  std::unordered_set<uint32_t> dead;
  for (const OverflowRecord& rec : records) {
    if (rec.is_tombstone()) dead.insert(rec.global_id);
  }

  HnswOptions options = sub_template;
  options.M = old_cluster.index.options().M;
  options.metric = old_cluster.index.options().metric;  // from the blob
  // Decorrelate level draws across partitions but keep determinism.
  options.seed = sub_template.seed * 0x9e3779b97f4a7c15ULL + old_cluster.partition_id;

  HnswIndex index(old_cluster.index.dim(), options);
  std::vector<uint32_t> global_ids;
  for (uint32_t local = 0; local < old_cluster.index.size(); ++local) {
    const uint32_t gid = old_cluster.global_ids[local];
    if (dead.count(gid)) {
      ++stats->tombstones_applied;
      continue;
    }
    index.Add(old_cluster.index.vector(local));
    global_ids.push_back(gid);
  }
  for (const OverflowRecord& rec : records) {
    if (rec.is_tombstone() || dead.count(rec.global_id)) continue;
    index.Add(rec.vector);
    global_ids.push_back(rec.global_id);
    ++stats->live_records_folded;
  }
  return Cluster(old_cluster.partition_id, std::move(index), std::move(global_ids));
}

}  // namespace

Result<CompactionStats> Compactor::Run(const MemoryNodeHandle& old_handle,
                                       std::unique_ptr<MemoryNode>* new_node,
                                       const LayoutConfig& layout) {
  CompactionStats stats;
  SimClock clock;
  rdma::QueuePair qp(fabric_, &clock);
  WallTimer run_timer;

  // Region header + metadata table, exactly like a compute node's bootstrap.
  AlignedBuffer header_buf(RegionHeader::kEncodedSize, 64);
  DHNSW_RETURN_IF_ERROR(qp.Read(old_handle.rkey, 0, header_buf.span()));
  DHNSW_ASSIGN_OR_RETURN(const RegionHeader header, DecodeRegionHeader(header_buf.span()));

  AlignedBuffer meta_buf(header.meta_blob_size, 64);
  DHNSW_RETURN_IF_ERROR(qp.Read(old_handle.rkey, header.meta_blob_offset, meta_buf.span()));
  DHNSW_ASSIGN_OR_RETURN(MetaHnsw meta, MetaHnsw::FromBlob(meta_buf.span()));

  std::vector<ClusterMeta> table(header.num_clusters);
  {
    AlignedBuffer table_buf(
        static_cast<size_t>(header.num_clusters) * ClusterMeta::kEncodedSize, 64);
    DHNSW_RETURN_IF_ERROR(qp.Read(old_handle.rkey, header.table_offset, table_buf.span()));
    for (uint32_t c = 0; c < header.num_clusters; ++c) {
      DHNSW_ASSIGN_OR_RETURN(
          table[c], DecodeClusterMeta(table_buf.subspan(
                        static_cast<size_t>(c) * ClusterMeta::kEncodedSize,
                        ClusterMeta::kEncodedSize)));
    }
  }

  // Read + rebuild every cluster.
  std::vector<Cluster> rebuilt;
  rebuilt.reserve(header.num_clusters);
  for (uint32_t c = 0; c < header.num_clusters; ++c) {
    const ClusterMeta& m = table[c];
    const ClusterMeta::Range range = m.ReadRange(m.overflow_used);
    AlignedBuffer buf(range.length, 64);
    DHNSW_RETURN_IF_ERROR(
        qp.Read(old_handle.rkey_for_slot(m.node_slot), range.offset, buf.span()));

    DHNSW_ASSIGN_OR_RETURN(
        Cluster old_cluster,
        DecodeCluster(buf.subspan(m.BlobOffsetInRead(m.overflow_used), m.blob_size),
                      sub_hnsw_template_));
    DHNSW_ASSIGN_OR_RETURN(
        std::vector<OverflowRecord> records,
        DecodeOverflowArea(buf.subspan(m.OverflowOffsetInRead(), m.overflow_used),
                           m.overflow_used, header.dim));
    rebuilt.push_back(RebuildCluster(old_cluster, records, sub_hnsw_template_, &stats));
  }
  stats.clusters = header.num_clusters;
  stats.bytes_read = qp.stats().bytes_read;
  stats.old_region_bytes = old_handle.region_size;

  // Provision the successor region (fresh node on the same fabric).
  auto node = std::make_unique<MemoryNode>(fabric_, "memory-node-compacted");
  DHNSW_RETURN_IF_ERROR(node->Provision(meta, rebuilt, layout, header.layout_version + 1,
                                        static_cast<uint32_t>(old_handle.num_shards())));
  stats.new_region_bytes = node->handle().region_size;
  *new_node = std::move(node);

  // Compaction is rare and heavyweight; per-run registry lookups are fine.
  telemetry::MetricRegistry& registry = telemetry::DefaultRegistry();
  registry.GetCounter("dhnsw_compaction_runs_total")->Add(1);
  registry.GetCounter("dhnsw_compaction_records_folded_total")->Add(stats.live_records_folded);
  registry.GetCounter("dhnsw_compaction_tombstones_applied_total")
      ->Add(stats.tombstones_applied);
  registry.GetCounter("dhnsw_compaction_bytes_read_total")->Add(stats.bytes_read);
  registry.GetHistogram("dhnsw_compaction_run_us")
      ->Record(static_cast<uint64_t>(run_timer.elapsed_us()));
  return stats;
}

}  // namespace dhnsw
