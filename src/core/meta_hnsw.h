// meta-HNSW: the lightweight representative index cached in every compute
// instance (paper §3.1, Fig. 3).
//
// Built over `R` uniformly sampled base vectors (paper: R = 500) as a
// *three-layer* HNSW. Each bottom-layer vector defines one partition; the
// meta-HNSW therefore acts both as the coarse router (greedy descent from the
// fixed top-layer entry point) and as the cluster classifier used at build
// time to assign every base vector to a partition.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "dataset/dataset.h"
#include "index/hnsw.h"
#include "index/pq.h"

namespace dhnsw {

/// How the R representatives are chosen from the base set.
enum class RepresentativeSelection : uint8_t {
  /// Uniform sampling — the paper's method ("uniformly selecting 500
  /// vectors", §3.1). Cheap; partition sizes follow the data density.
  kUniformSample = 0,
  /// Lloyd's k-means (centroids snapped to their nearest base vector so
  /// representatives remain real data points) — the Pyramid-style [4]
  /// alternative. Costlier build, more balanced partitions.
  kKmeans = 1,
};

struct MetaHnswOptions {
  uint32_t num_representatives = 500;  ///< R; clamped to the base size
  uint32_t m = 8;                      ///< HNSW M for the meta graph
  uint32_t ef_construction = 100;
  uint32_t ef_route = 32;              ///< ef used when routing a vector
  Metric metric = Metric::kL2;
  uint64_t seed = 0x4d455441ULL;       ///< sampling + level-assignment seed
  RepresentativeSelection selection = RepresentativeSelection::kUniformSample;
  uint32_t kmeans_iterations = 8;      ///< Lloyd rounds (kKmeans only)
  /// Worker threads for the k-means assignment and medoid-snap scans
  /// (kKmeans only; the 3-layer graph build itself stays sequential — R is
  /// tiny). The result is bit-identical for every thread count: assignment
  /// writes are per-row, the centroid update reduction is sequential, and
  /// the parallel medoid argmin is resolved sequentially in centroid order.
  uint32_t build_threads = 1;
};

class MetaHnsw {
 public:
  /// Samples representatives from `base` (uniform, seeded) and builds the
  /// 3-layer graph. Representative i defines partition i.
  static Result<MetaHnsw> Build(const VectorSet& base, const MetaHnswOptions& options);

  /// Reconstructs a meta-HNSW from its serialized blob (compute instances
  /// fetch the blob from the memory pool once at connection time).
  static Result<MetaHnsw> FromBlob(std::span<const uint8_t> blob);

  uint32_t num_partitions() const noexcept { return static_cast<uint32_t>(index_.size()); }
  uint32_t dim() const noexcept { return index_.dim(); }
  const HnswIndex& index() const noexcept { return index_; }

  /// Global base-vector id of representative `partition`.
  uint32_t representative_global_id(uint32_t partition) const {
    return rep_global_ids_[partition];
  }

  /// Routing search width (compute instances may tune it per ComputeOptions).
  uint32_t ef_route() const noexcept { return ef_route_; }
  void set_ef_route(uint32_t ef) noexcept { ef_route_ = ef == 0 ? 1 : ef; }

  /// Routes a vector to its single nearest partition (build-time classifier
  /// and insert-path router).
  uint32_t RouteOne(std::span<const float> v) const;

  /// Routes a query to its `b` closest partitions, best first (query path).
  std::vector<uint32_t> RouteMany(std::span<const float> v, uint32_t b) const;

  /// Like RouteMany, but keeps the representative distances (id = partition,
  /// distance = dist(v, representative)). Used by adaptive cluster pruning.
  std::vector<Scored> RouteManyScored(std::span<const float> v, uint32_t b) const;

  /// Shared PQ codebook trained on build residuals (vector minus owning
  /// representative). Serialized into the meta blob as an extension section,
  /// so every compute instance receives it with the one-time meta fetch.
  /// nullptr when the deployment was built without PQ.
  const ProductQuantizer* quantizer() const noexcept {
    return quantizer_ ? &*quantizer_ : nullptr;
  }
  void set_quantizer(ProductQuantizer q) { quantizer_ = std::move(q); }

  /// Serialized form — what the memory pool stores and compute nodes cache.
  /// (The paper reports 0.373 MB for SIFT1M, 1.960 MB for GIST1M.)
  std::vector<uint8_t> ToBlob() const;

 private:
  MetaHnsw(HnswIndex index, std::vector<uint32_t> rep_global_ids, uint32_t ef_route)
      : index_(std::move(index)), rep_global_ids_(std::move(rep_global_ids)),
        ef_route_(ef_route) {}

  HnswIndex index_;                     ///< graph over representatives
  std::vector<uint32_t> rep_global_ids_;///< partition -> base-vector id
  uint32_t ef_route_;
  std::optional<ProductQuantizer> quantizer_;  ///< shared PQ codebook
};

}  // namespace dhnsw
