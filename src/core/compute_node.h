// A compute instance: the active side of d-HNSW.
//
// Holds the cached meta-HNSW, a small LRU cluster cache, and a queue pair to
// the memory node. Serves batched top-k queries (paper §3.1-3.3) and dynamic
// inserts (§3.2's overflow protocol). All remote access is one-sided.
//
// The three evaluation modes of the paper map to `EngineMode`:
//   kNaive      — baseline (1): one RDMA READ round trip per (query, cluster)
//                 pair; no cluster cache, no batch dedup, no doorbell.
//   kNoDoorbell — baseline (2): meta caching + query-aware dedup + cache, but
//                 each cluster load is its own round trip.
//   kFull       — d-HNSW: additionally coalesces loads into doorbell batches.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "common/lru_cache.h"
#include "common/thread_pool.h"
#include "common/retry_policy.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "common/topk.h"
#include "core/batch_scheduler.h"
#include "core/memory_layout.h"
#include "core/memory_node.h"
#include "core/meta_hnsw.h"
#include "core/replication.h"
#include "rdma/queue_pair.h"
#include "serialize/cluster_blob.h"
#include "serialize/overflow.h"
#include "telemetry/trace.h"

namespace dhnsw {

enum class EngineMode : uint8_t { kNaive = 0, kNoDoorbell = 1, kFull = 2 };

std::string_view EngineModeName(EngineMode mode) noexcept;

/// How a loaded cluster is searched on the compute side.
enum class SubSearchMode : uint8_t {
  kGraph = 0,     ///< sub-HNSW greedy search with efSearch (the paper)
  kFlatScan = 1,  ///< exact linear scan of the cluster's vectors — the
                  ///< "d-IVF" ablation isolating the graph's contribution
};

/// What a cluster load transfers over the fabric.
enum class PayloadMode : uint8_t {
  kRaw = 0,       ///< full blob + overflow (the seed behaviour)
  kPq = 1,        ///< PQ prefix only (graph + codes, no float rows); sub-
                  ///< searches score with SIMD ADC against the shared codebook
  kPqRerank = 2,  ///< kPq plus exact re-rank: the top rerank_depth ADC
                  ///< survivors per (query, cluster) fetch their raw vectors
                  ///< with doorbell-batched READs and are rescored exactly
};

std::string_view PayloadModeName(PayloadMode mode) noexcept;

struct ComputeOptions {
  EngineMode mode = EngineMode::kFull;
  uint32_t clusters_per_query = 2;  ///< b: sub-HNSWs searched per query
  uint32_t cache_capacity = 8;      ///< c: clusters the DRAM cache holds
  uint32_t doorbell_batch = 16;     ///< D: max READ WRs coalesced per ring
  uint32_t ef_meta = 32;            ///< ef for meta-HNSW routing
  size_t search_threads = 1;        ///< intra-instance search parallelism
  /// Pipelined wave execution (DESIGN.md §10): 0/1 runs waves sequentially
  /// (load wave N, then search it — the seed behaviour); >= 2 double-buffers
  /// the executor — while wave N's sub-searches run, wave N+1's deduped
  /// cluster READs are already posted and draining on the async QP path, and
  /// are reaped when wave N finishes. The implementation keeps exactly one
  /// wave in flight ahead (deeper depths are clamped to that). Results,
  /// per-query statuses, cache contents, retry/fencing semantics, and the
  /// simulated timeline are bit-identical to the sequential path
  /// (tests/test_pipeline.cpp); only wall-clock time changes. Falls back to
  /// sequential when adaptive_prune_factor > 0 (prune decisions depend on the
  /// previous wave's heaps, so the next load set is not known in advance) and
  /// in kNaive mode (no wave structure to overlap).
  uint32_t pipeline_depth = 2;
  /// When true, overflow vectors are inserted into the decoded sub-HNSW at
  /// load time (CPU cost once per load) instead of being linearly scanned on
  /// every query against that cluster. Worth it once overflow grows. Ignored
  /// under PQ payloads: there is no raw graph to link into, so overflow
  /// records (which arrive raw either way) are always scanned exactly.
  bool link_overflow_on_load = false;
  /// Compressed cluster payloads (DESIGN.md "PQ payloads"). Non-raw modes
  /// require a deployment built with PqConfig.enabled — Connect() fails
  /// otherwise — and a non-cosine metric. kPqRerank additionally disables
  /// pipelined waves: its owner-thread raw-vector READs interleave with the
  /// wave sequence, which must stay deterministic for replay/fault purity.
  PayloadMode payload = PayloadMode::kRaw;
  /// R: ADC survivors per (query, cluster) re-ranked exactly (kPqRerank).
  /// The effective depth is max(k, rerank_depth).
  uint32_t rerank_depth = 32;
  /// When > 0 the cluster cache is byte-budgeted: capacity becomes this many
  /// bytes of loaded transfer buffers, every entry weighted by its transfer
  /// size — so PQ-compressed clusters pack proportionally more entries into
  /// the same DRAM. 0 keeps entry-count semantics (cache_capacity entries).
  /// Wave planning still uses cache_capacity as its working-set bound.
  size_t cache_budget_bytes = 0;
  /// Adaptive cluster pruning (cf. the paper's related work [12, 43]): when
  /// > 0, a query whose top-k is already full skips any remaining routed
  /// cluster whose *representative* distance exceeds
  ///   factor * (current k-th best distance).
  /// A whole cluster load is elided when every query wanting it prunes it.
  /// 0 disables pruning (the paper's behaviour). Typical values 1.5-4.0;
  /// smaller is more aggressive. Applies to kNoDoorbell/kFull modes only.
  double adaptive_prune_factor = 0.0;
  /// Graph search (the paper) or exact per-cluster scan (IVF-style ablation).
  SubSearchMode sub_search = SubSearchMode::kGraph;
  HnswOptions sub_hnsw_template;    ///< decode-side options (metric etc.)
  /// Retry/backoff applied to every fabric operation (cluster loads,
  /// metadata refresh, insert rings). Disabled by default: fault-free
  /// deployments keep byte-identical behaviour and simulated timing.
  RetryPolicy retry;
  /// Graceful degradation: when true, a batch whose cluster loads
  /// permanently fail returns partial results — affected queries keep
  /// whatever they found elsewhere and carry a non-OK per-query status in
  /// BatchResult::statuses — instead of failing the whole batch. When false
  /// (default) the first unrecovered error fails the batch, the seed
  /// behaviour.
  bool partial_results = false;
};

/// Per-batch latency/traffic attribution — the paper's Table 1/2 columns
/// plus the round-trip counts quoted in §4.
struct BatchBreakdown {
  double network_us = 0.0;      ///< simulated fabric time
  double meta_us = 0.0;         ///< meta-HNSW (cache) computation, wall time
  double sub_us = 0.0;          ///< sub-HNSW search on loaded data, wall time
  double deserialize_us = 0.0;  ///< blob decode, wall time
  uint64_t round_trips = 0;
  uint64_t bytes_read = 0;
  uint64_t clusters_loaded = 0;
  uint64_t cache_hits = 0;
  uint64_t pruned_searches = 0;  ///< (query, cluster) pairs skipped adaptively
  uint64_t pruned_loads = 0;     ///< whole cluster loads elided by pruning
  uint64_t retries = 0;          ///< fabric ops re-issued after a failure
  uint64_t failed_loads = 0;     ///< cluster loads abandoned after retries
  uint64_t backoff_ns = 0;       ///< simulated ns spent backing off
  uint64_t failovers = 0;        ///< replica failovers this batch triggered
  /// Wall ns of prefetch work (wave N+1 READ draining + decode) that ran
  /// concurrently with wave N's sub-searches instead of stalling the batch —
  /// the observable win of pipeline_depth >= 2. Wall-clock derived: it never
  /// feeds spans or the simulated timeline, which stay deterministic.
  uint64_t pipeline_overlap_ns = 0;
  uint64_t rerank_candidates = 0;  ///< ADC survivors submitted for re-rank
  uint64_t rerank_reads = 0;       ///< raw-vector READs posted (incl. retries)
  uint64_t rerank_bytes = 0;       ///< bytes those READs moved
  uint64_t rerank_fallbacks = 0;   ///< candidates kept at ADC score after failed reads
  size_t num_queries = 0;

  BatchBreakdown& operator+=(const BatchBreakdown& rhs) noexcept;
  double per_query_network_us() const { return Per(network_us); }
  double per_query_meta_us() const { return Per(meta_us); }
  double per_query_sub_us() const { return Per(sub_us); }
  double per_query_round_trips() const { return Per(static_cast<double>(round_trips)); }

 private:
  double Per(double v) const {
    return num_queries == 0 ? 0.0 : v / static_cast<double>(num_queries);
  }
};

struct BatchResult {
  /// results[i] = top-k (global ids) for query i, ascending distance.
  std::vector<std::vector<Scored>> results;
  /// statuses[i] = OK when query i saw every routed cluster; otherwise the
  /// first load failure that reduced its candidate set (partial_results
  /// mode). Same length as `results`.
  std::vector<Status> statuses;
  BatchBreakdown breakdown;
};

struct InsertReceipt {
  uint32_t partition = 0;
  uint64_t remote_offset = 0;  ///< where the record landed
};

class ComputeNode {
 public:
  ComputeNode(rdma::Fabric* fabric, MemoryNodeHandle memory, ComputeOptions options,
              std::string name = "compute-node");

  /// Bootstrap: fetches region header, meta-HNSW blob, and metadata table
  /// via RDMA. Must be called once before queries; resets stats afterwards.
  Status Connect();

  /// Re-attaches to a (possibly different) memory region — used after
  /// compaction re-provisions the layout. Drops all cached state.
  Status Reconnect(MemoryNodeHandle memory);

  bool connected() const noexcept { return meta_.has_value(); }
  const ComputeOptions& options() const noexcept { return options_; }
  ComputeOptions* mutable_options() noexcept { return &options_; }
  const MetaHnsw& meta() const { return *meta_; }
  uint32_t num_clusters() const noexcept { return header_.num_clusters; }
  uint32_t dim() const noexcept { return header_.dim; }

  /// Attaches the replica directory: every subsequent fabric access resolves
  /// its target through the manager's PrimaryRoute and stamps the slot epoch
  /// into the work request; failures feed the manager's failure detector and
  /// inserts fan out to every live replica. Pass nullptr to detach (accesses
  /// then go straight to the provisioning-time handle, unfenced — the
  /// single-replica seed behaviour). The manager must outlive this node.
  void AttachReplicaManager(ReplicaManager* manager) noexcept { replication_ = manager; }
  ReplicaManager* replica_manager() const noexcept { return replication_; }

  /// Searches queries [begin, begin+count) of `queries` for their top-k with
  /// the given sub-HNSW ef. One call == one batch (paper batch size 2000).
  Result<BatchResult> SearchBatch(const VectorSet& queries, size_t begin, size_t count,
                                  size_t k, uint32_t ef_search);

  /// Whole-set convenience.
  Result<BatchResult> SearchAll(const VectorSet& queries, size_t k, uint32_t ef_search) {
    return SearchBatch(queries, 0, queries.size(), k, ef_search);
  }

  /// Inserts a vector under `global_id`: routes via the cached meta-HNSW,
  /// allocates overflow space with a remote FAA (validating the shared
  /// group budget), then writes the record with a single RDMA_WRITE.
  Result<InsertReceipt> Insert(std::span<const float> v, uint32_t global_id);

  /// Deletes `global_id` by appending a tombstone record to the partition
  /// that owns it. `v` must be the stored vector (routing key — d-HNSW has
  /// no id directory, matching the paper's design). Same cost as Insert.
  Result<InsertReceipt> Remove(std::span<const float> v, uint32_t global_id);

  /// Batched insertion: routes all vectors, groups them by partition, and
  /// per partition claims space for the WHOLE group with a single FAA, then
  /// writes the records with doorbell-batched WRITEs. Round trips drop from
  /// 2 per vector to ~2 per touched partition — the write-path analogue of
  /// §3.3's query-aware batching. All-or-nothing per partition: a partition
  /// whose shared overflow cannot fit its group is rolled back and its
  /// vector indices are reported in `rejected` (Capacity), while other
  /// partitions' inserts proceed.
  struct BatchInsertResult {
    uint32_t inserted = 0;
    std::vector<size_t> rejected;  ///< indices into the input batch
  };
  Result<BatchInsertResult> InsertBatch(const VectorSet& vectors,
                                        std::span<const uint32_t> global_ids);

  /// Re-reads the metadata table (1 round trip). SearchBatch does this
  /// automatically at batch start; exposed for tests.
  Status RefreshMetadata();

  /// Drops all cached clusters (not the meta-HNSW).
  void InvalidateCache();

  /// --- per-query tracing (see DESIGN.md "Telemetry subsystem") ---
  /// Reserves a bounded trace buffer of `capacity` events; 0 disables tracing.
  /// The reservation allocates now so that steady-state spans never do. Spans
  /// cover the whole query path: batch umbrella, disjoint "stage.*" phases,
  /// nested per-query / per-cluster / per-ring detail.
  void EnableTracing(size_t capacity) { trace_buffer_.Reserve(capacity); }
  const telemetry::TraceBuffer& trace() const noexcept { return trace_buffer_; }
  void ClearTrace() noexcept { trace_buffer_.Clear(); }

  const rdma::QpStats& qp_stats() const noexcept { return qp_.stats(); }
  const SimClock& clock() const noexcept { return clock_; }
  size_t cache_size() const noexcept { return cache_.size(); }
  /// Test hook: whether `cluster` is resident in the LRU cache (no LRU touch).
  bool IsCached(uint32_t cluster) const noexcept { return cache_.Contains(cluster); }
  uint64_t cache_hits() const noexcept { return cache_.hits(); }
  uint64_t cache_misses() const noexcept { return cache_.misses(); }
  const std::string& name() const noexcept { return name_; }

 private:
  /// A cluster resident in compute DRAM: either the decoded raw graph
  /// (payload=raw) or the PQ prefix (graph + codes + centroid/codebook refs,
  /// payload=pq*), plus overflow records (live inserts, always raw) and the
  /// set of tombstoned ids to suppress.
  struct LoadedCluster {
    std::optional<Cluster> cluster;            ///< raw payload
    std::optional<PqCluster> pq;               ///< PQ prefix payload
    std::vector<float> centroid;               ///< pq: partition representative
    const ProductQuantizer* quantizer = nullptr;  ///< pq: meta-owned codebook
    std::vector<OverflowRecord> overflow;      ///< live records (unlinked mode)
    std::vector<uint32_t> tombstones;          ///< deleted global ids (sorted)
    uint64_t used_bytes_at_load = 0;

    bool IsDeleted(uint32_t global_id) const noexcept;

    /// Searches graph + overflow, pushing *global* ids into `out` (raw).
    void Search(std::span<const float> q, size_t k, uint32_t ef, Metric metric,
                SubSearchMode mode, TopKHeap* out) const;
    /// ADC search over the PQ payload. With `rerank_cands` null, ADC scores
    /// go straight into `out` (payload=pq). Non-null (payload=pq+rerank) the
    /// top max(k, rerank) tombstone-filtered survivors are collected as
    /// (local id, ADC distance) for the caller's exact re-rank instead.
    /// Overflow records arrive raw either way and are scored exactly into
    /// `out`.
    void SearchPq(std::span<const float> q, size_t k, uint32_t ef, Metric metric,
                  SubSearchMode mode, uint32_t rerank,
                  std::vector<Scored>* rerank_cands, TopKHeap* out) const;
  };
  using LoadedClusterPtr = std::shared_ptr<const LoadedCluster>;

  /// Reads one cluster (blob + used overflow) into a fresh buffer and posts
  /// nothing — the caller controls doorbell grouping via `qp_.PostRead`.
  /// `used_bytes` snapshots the cluster's overflow counter at post time so a
  /// prefetch worker can decode without touching the (owner-thread) table.
  struct PendingLoad {
    uint32_t cluster;
    AlignedBuffer buffer;
    uint64_t used_bytes = 0;
  };

  /// `traced` = false suppresses the "cluster.decode" span: the prefetch
  /// worker decodes off-thread and the trace buffer is single-writer; the
  /// reap emits the deterministic marker event instead.
  Result<LoadedClusterPtr> DecodeLoaded(uint32_t cluster, std::span<const uint8_t> bytes,
                                        uint64_t used_bytes, double* deserialize_us,
                                        bool traced = true);

  /// A cluster load abandoned after exhausting the retry budget.
  struct FailedLoad {
    uint32_t cluster;
    Status status;
  };

  /// Loads `ids` (must not be cached): kFull coalesces into doorbell rings of
  /// `doorbell_batch`, kNoDoorbell issues one ring each. Decoded clusters are
  /// installed into the cache. Returns resident pointers for the wave.
  /// Transient failures (unreachable / timeout / CRC mismatch) are retried
  /// per options_.retry with backoff charged to the clock. Loads that still
  /// fail are reported in `failed` when non-null (graceful degradation) or
  /// fail the call with the first error when `failed` is null.
  Status LoadClusters(std::span<const uint32_t> ids,
                      std::vector<std::pair<uint32_t, LoadedClusterPtr>>* out,
                      BatchBreakdown* breakdown,
                      std::vector<FailedLoad>* failed = nullptr);

  /// Mutable state of one LoadClusters retry sequence. Shared between the
  /// blocking path (RunLoadRounds drives every round) and the pipelined reap,
  /// which consumes the prefetched round itself and hands rounds >= 2 to the
  /// same machinery — so retry counting, backoff, failover reporting, and
  /// final error attribution are one code path regardless of executor.
  struct LoadRoundState {
    LoadRoundState(const RetryPolicy& policy, SimClock* clock, bool real_sleep = false)
        : budget(policy, clock, real_sleep) {}
    RetryBudget budget;
    uint32_t round_failures = 0;
    std::vector<uint32_t> remaining;
    /// Sticky per-cluster last error, kept across rounds for final reporting.
    std::vector<std::pair<uint32_t, Status>> last_error;
  };

  /// One wave's cluster loads: the post-cache-check miss list, plus — on the
  /// pipelined path — the posted async batch and the prefetch worker's
  /// outputs. Heap-allocated so the worker can hold a stable pointer.
  struct WaveLoadState {
    std::vector<uint32_t> to_load;  ///< cache misses, sorted by node slot once posted
    bool async = false;
    // --- pipelined prefetch only ---
    std::vector<PendingLoad> pending;             ///< posted order
    std::unique_ptr<rdma::AsyncBatch> batch;
    std::vector<Result<LoadedClusterPtr>> decoded;  ///< aligned with pending
    double deserialize_us = 0.0;
    uint64_t worker_busy_ns = 0;  ///< wall ns the worker spent (execute + decode)
    std::future<void> done;
  };

  /// kFull coalesces `doorbell_batch` READs per ring; other modes ring singly.
  uint32_t DoorbellWindow() const noexcept;
  /// Sorts `remaining` by owning node slot, stages buffers, posts the READs,
  /// and invokes `ring` exactly where the doorbell closes (destination change
  /// / window full / end) — RingDoorbell on the blocking path, StageAsyncRing
  /// on the async one, so both produce the same WR/ring sequence.
  std::vector<PendingLoad> PostRoundReads(std::vector<uint32_t>* remaining,
                                          const std::function<void()>& ring);
  /// Drains the CQ, returning (cluster, status) for every failed READ.
  std::vector<std::pair<uint32_t, Status>> DrainReadErrors();
  void RecordLoadError(LoadRoundState* state, uint32_t cluster, Status st);
  /// Decodes/installs one executed round. `predecoded` non-null supplies the
  /// prefetch worker's decode results (aligned with `pending`); null decodes
  /// inline. Retryable failures land in `next_round`.
  void ProcessLoadRound(std::vector<PendingLoad>& pending,
                        const std::vector<std::pair<uint32_t, Status>>& read_errors,
                        std::vector<Result<LoadedClusterPtr>>* predecoded,
                        LoadRoundState* state,
                        std::vector<std::pair<uint32_t, LoadedClusterPtr>>* out,
                        BatchBreakdown* breakdown, std::vector<uint32_t>* next_round);
  /// Retry gate after a failed round: consumes budget, charges backoff, and
  /// records the accounting/trace event. False = give up (errors stand).
  bool AdvanceLoadRound(LoadRoundState* state, const std::vector<uint32_t>& next_round,
                        BatchBreakdown* breakdown);
  /// Runs post/ring/drain/process rounds until `state->remaining` is empty or
  /// the retry budget refuses.
  void RunLoadRounds(LoadRoundState* state,
                     std::vector<std::pair<uint32_t, LoadedClusterPtr>>* out,
                     BatchBreakdown* breakdown);
  /// Final error attribution: abandoned clusters either fail the call (strict
  /// mode, `failed` null) or are reported for per-query degradation.
  Status FinalizeLoads(LoadRoundState* state,
                       const std::vector<std::pair<uint32_t, LoadedClusterPtr>>& out,
                       BatchBreakdown* breakdown, std::vector<FailedLoad>* failed);

  /// Computes a wave's miss list (cache checks + hit/miss accounting) and, on
  /// the pipelined path, posts its READs and hands the batch to the prefetch
  /// worker under a "stage.prefetch" span. `load_wanted` (nullable) is the
  /// adaptive-prune elision mask — sequential executor only.
  std::unique_ptr<WaveLoadState> IssueWaveLoads(const LoadWave& wave,
                                                const std::vector<uint8_t>* load_wanted,
                                                bool pipelined, BatchBreakdown* breakdown);
  /// Blocks until the wave's loads are resident (or abandoned): joins the
  /// prefetch worker and performs the deferred sim/stats accounting, or runs
  /// the whole blocking load when the wave was not issued asynchronously.
  /// Retry rounds after a prefetched round run synchronously right here, so
  /// recovery semantics match the blocking path exactly.
  Status ReapWaveLoads(WaveLoadState* wave_load,
                       std::vector<std::pair<uint32_t, LoadedClusterPtr>>* out,
                       BatchBreakdown* breakdown, std::vector<FailedLoad>* failed);
  /// Early-exit cleanup: joins + reaps an in-flight prefetch whose results
  /// will never be consumed, keeping the QP/CQ consistent for the next batch.
  void AbandonPrefetch(WaveLoadState* wave_load);

  /// Persistent worker pools (lazily built; the search pool is rebuilt when
  /// options_.search_threads changes). Constructing a ThreadPool per wave
  /// cost ~50-100us of thread spawn/join per wave — a latency cliff for
  /// search_threads > 1 on small waves; these amortize it to once per node.
  ThreadPool* SearchPool();
  ThreadPool* PrefetchPool();

  /// Runs `fn` (returning Status) under options_.retry: transient errors are
  /// retried with backoff charged to the clock; the last error is returned
  /// when the budget is spent. Accounting lands in retries/backoff_out.
  template <typename Fn>
  Status WithRetry(Fn&& fn, uint64_t* retries_out = nullptr,
                   uint64_t* backoff_out = nullptr) {
    RetryBudget budget(options_.retry, &clock_, real_backoff_);
    uint32_t failures = 0;
    for (;;) {
      Status st = fn();
      if (st.ok() || !IsRetryable(st)) return st;
      uint64_t backoff = 0;
      if (!budget.AllowRetry(++failures, &backoff)) return st;
      if (retries_out != nullptr) ++*retries_out;
      if (backoff_out != nullptr) *backoff_out += backoff;
    }
  }

  Status NaiveSearch(const VectorSet& queries, size_t begin, size_t count, size_t k,
                     uint32_t ef_search,
                     const std::vector<std::vector<uint32_t>>& routes,
                     BatchResult* result);

  /// Cache weight of a load: its transfer size under a byte budget, 1 entry
  /// otherwise.
  size_t CacheWeight(size_t transfer_bytes) const noexcept {
    return options_.cache_budget_bytes > 0 ? transfer_bytes : 1;
  }

  /// One (query, cluster) re-rank unit: the ADC survivors of a sub-search
  /// awaiting exact rescoring against their fetched raw vectors.
  struct RerankTask {
    uint32_t cluster = 0;
    const LoadedCluster* loaded = nullptr;
    size_t query_row = 0;  ///< row in the batch's VectorSet
    size_t heap = 0;       ///< index into the heaps span
    std::vector<Scored> cands;  ///< local ids + ADC distances
  };
  /// Exact re-rank (payload=pq+rerank): dedups the tasks' candidates into
  /// unique (cluster, local id) raw-vector READs, posts them doorbell-batched
  /// under a "stage.rerank" span, and rescores with the pair kernel into the
  /// query heaps. A vector whose READ permanently fails keeps its ADC score
  /// (counted in rerank_fallbacks) — re-rank degrades, never fails a batch.
  void RunRerank(const VectorSet& queries, std::vector<RerankTask>& tasks,
                 std::span<TopKHeap> heaps, BatchBreakdown* breakdown);

  /// Where ops against `slot` go right now: the replica manager's primary
  /// route (rkey + fence epoch) when attached, else the provisioning-time
  /// handle unfenced (epoch 0 — admitted regardless of region epoch).
  struct SlotRoute {
    rdma::RKey rkey = 0;
    uint64_t epoch = 0;
  };
  SlotRoute RouteFor(uint32_t slot) const;

  /// Feeds a reachability failure (kUnavailable / kDeadlineExceeded) against
  /// `slot`'s primary into the failure detector. Returns true when the report
  /// tipped the slot into failover — the caller's next RouteFor() then names
  /// the promoted replica at the bumped epoch.
  bool NoteSlotFailure(uint32_t slot, BatchBreakdown* breakdown);
  /// NoteSlotFailure for the slots behind a set of failed cluster loads.
  void ReportLoadFailures(const std::vector<std::pair<uint32_t, Status>>& read_errors,
                          BatchBreakdown* breakdown);

  /// Replicated record write: WRITE + same-ring READ-back against every
  /// non-dead replica of `slot`; the CRC-carrying record bytes must read back
  /// identical (the per-replica ack). Primary failure fails the call;
  /// a secondary that cannot ack is reported to the failure detector and
  /// skipped. Requires an attached manager.
  ///
  /// Every WR is fenced with `fence_epoch` — the slot's epoch captured when
  /// the record's offset was FAA-allocated — NOT a freshly resolved one. A
  /// failover between allocation and fan-out otherwise lands the record at a
  /// stale offset on the promoted replica, colliding with slots its counter
  /// hands out before the dead primary's delta is mirrored (an acked insert
  /// then silently vanishes). With the captured epoch the stale write fences
  /// out instead; the caller observes the epoch moved and restarts the whole
  /// allocation.
  Status ReplicateRecordWrite(uint32_t slot, uint64_t remote_offset,
                              std::span<const uint8_t> record, uint64_t fence_epoch);
  /// Batched form: all records of one partition group, per-replica doorbell
  /// rings of interleaved WRITE/READ-back pairs. Same fencing contract.
  Status ReplicateGroupWrites(uint32_t slot, const std::vector<uint64_t>& offsets,
                              const std::vector<std::vector<uint8_t>>& records,
                              uint64_t fence_epoch);
  /// Catch-up FAAs: mirrors a counter delta onto slot 0's secondaries so
  /// their overflow counters converge with the primary's authoritative one.
  /// Fenced with the allocation-time epoch like ReplicateRecordWrite.
  /// Returns false when slot 0's epoch moved past `fence_epoch` before every
  /// live secondary absorbed the delta — the caller must restart the
  /// allocation on the new primary; true otherwise (secondaries that are
  /// simply dead are reported and skipped, never a reason to restart).
  bool ReplicateCounterAdd(uint64_t remote_offset, uint64_t add, uint64_t fence_epoch);

  /// Shared tail of Insert/Remove: FAA-allocate a record slot in `partition`
  /// (validating the shared group budget against the partner), then WRITE
  /// the pre-encoded record bytes. Two round trips.
  Result<InsertReceipt> AppendRecord(uint32_t partition,
                                     std::span<const uint8_t> record);

  rdma::Fabric* fabric_;
  MemoryNodeHandle memory_;
  ComputeOptions options_;
  std::string name_;
  ReplicaManager* replication_ = nullptr;  ///< not owned; may be null
  /// True on real transports (tcp/verbs): retry backoff then sleeps for real
  /// instead of charging the SimClock (see RetryBudget).
  bool real_backoff_ = false;

  SimClock clock_;
  rdma::QueuePair qp_;

  RegionHeader header_;
  std::vector<ClusterMeta> table_;
  std::optional<MetaHnsw> meta_;
  LruCache<uint32_t, LoadedClusterPtr> cache_;

  /// Wave-local O(1) resident map (cluster id -> resident decoded cluster),
  /// rebuilt per wave on the owner thread; sub-search workers only read it.
  /// Replaces the old per-work-item linear scan + LruCache::Get, which both
  /// cost O(work x fresh) and raced the LRU recency splice from pool threads.
  std::vector<const LoadedCluster*> wave_resident_;
  std::vector<uint8_t> wave_probed_;  ///< clusters already looked up this wave
  std::unique_ptr<ThreadPool> search_pool_;
  std::unique_ptr<ThreadPool> prefetch_pool_;  ///< 1 thread: drains + decodes prefetches

  telemetry::TraceBuffer trace_buffer_;
  /// Stamps spans with clock_; qp_ holds a pointer to it, so the batch id set
  /// at SearchBatch entry propagates to "rdma.ring" spans automatically.
  telemetry::TraceContext trace_ctx_;
  uint32_t batch_seq_ = 0;
};

}  // namespace dhnsw
