#include "dataset/synthetic.h"

#include <vector>

#include "common/rng.h"

namespace dhnsw {
namespace {

std::vector<float> DrawCenters(const SyntheticSpec& spec, Xoshiro256& rng) {
  std::vector<float> centers(static_cast<size_t>(spec.num_clusters) * spec.dim);
  for (float& c : centers) {
    c = (rng.NextFloat() * 2.0f - 1.0f) * spec.box_half_width;
  }
  return centers;
}

void DrawPoints(const SyntheticSpec& spec, const std::vector<float>& centers,
                uint32_t count, Xoshiro256& rng, VectorSet* out) {
  out->Reserve(count);
  std::vector<float> v(spec.dim);
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t c = static_cast<uint32_t>(rng.NextBounded(spec.num_clusters));
    const float* center = centers.data() + static_cast<size_t>(c) * spec.dim;
    for (uint32_t d = 0; d < spec.dim; ++d) {
      v[d] = center[d] + spec.cluster_stddev * static_cast<float>(rng.NextGaussian());
    }
    out->Append(v);
  }
}

}  // namespace

Dataset MakeSynthetic(const SyntheticSpec& spec) {
  Xoshiro256 rng(spec.seed);
  const std::vector<float> centers = DrawCenters(spec, rng);

  Dataset ds;
  ds.name = spec.name;
  ds.base = VectorSet(spec.dim);
  ds.queries = VectorSet(spec.dim);
  DrawPoints(spec, centers, spec.num_base, rng, &ds.base);
  DrawPoints(spec, centers, spec.num_queries, rng, &ds.queries);
  return ds;
}

Dataset MakeSiftLike(uint32_t num_base, uint32_t num_queries, uint64_t seed) {
  SyntheticSpec spec;
  spec.dim = 128;
  spec.num_base = num_base;
  spec.num_queries = num_queries;
  spec.num_clusters = 120;
  spec.box_half_width = 128.0f;  // SIFT components live in [0, 255]-ish
  // Overlapping clusters: in 128-d this sigma puts intra-cluster spread at
  // roughly half the typical inter-center distance, so nearest-neighbor sets
  // cross partition boundaries the way real SIFT descriptors do (recall then
  // climbs with efSearch instead of saturating immediately).
  spec.cluster_stddev = 40.0f;
  spec.seed = seed;
  spec.name = "sift-like";
  return MakeSynthetic(spec);
}

Dataset MakeGistLike(uint32_t num_base, uint32_t num_queries, uint64_t seed) {
  SyntheticSpec spec;
  spec.dim = 960;
  spec.num_base = num_base;
  spec.num_queries = num_queries;
  spec.num_clusters = 80;
  spec.box_half_width = 0.5f;  // GIST descriptors are small positive floats
  spec.cluster_stddev = 0.18f; // overlapping, as for the SIFT-like generator
  spec.seed = seed;
  spec.name = "gist-like";
  return MakeSynthetic(spec);
}

Dataset MakeUniform(uint32_t dim, uint32_t num_base, uint32_t num_queries, uint64_t seed) {
  SyntheticSpec spec;
  spec.dim = dim;
  spec.num_base = num_base;
  spec.num_queries = num_queries;
  spec.num_clusters = 1;
  spec.box_half_width = 0.0f;   // single center at origin...
  spec.cluster_stddev = 50.0f;  // ...with a wide isotropic cloud
  spec.seed = seed;
  spec.name = "uniform";
  return MakeSynthetic(spec);
}

}  // namespace dhnsw
