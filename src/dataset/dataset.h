// In-memory vector dataset: row-major float matrix plus a query set and
// (optionally) exact ground truth for recall measurement.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace dhnsw {

/// Row-major float matrix with fixed dimensionality.
class VectorSet {
 public:
  VectorSet() = default;
  explicit VectorSet(uint32_t dim) : dim_(dim) {}
  VectorSet(uint32_t dim, std::vector<float> data);

  uint32_t dim() const noexcept { return dim_; }
  size_t size() const noexcept { return dim_ == 0 ? 0 : data_.size() / dim_; }
  bool empty() const noexcept { return data_.empty(); }

  std::span<const float> operator[](size_t i) const {
    return {data_.data() + i * dim_, dim_};
  }
  std::span<const float> flat() const noexcept { return data_; }

  void Append(std::span<const float> v);
  void Reserve(size_t rows) { data_.reserve(rows * dim_); }

 private:
  uint32_t dim_ = 0;
  std::vector<float> data_;
};

/// A benchmark dataset: base vectors, query vectors, and metadata.
struct Dataset {
  std::string name;        ///< "sift-like", "gist-like", file stem, ...
  VectorSet base;
  VectorSet queries;
  /// Exact top-`gt_k` ids per query, row-major (queries.size() x gt_k).
  /// Empty until ComputeGroundTruth fills it.
  std::vector<uint32_t> ground_truth;
  uint32_t gt_k = 0;

  std::span<const uint32_t> GroundTruthFor(size_t query_index) const {
    return {ground_truth.data() + query_index * gt_k, gt_k};
  }
};

}  // namespace dhnsw
