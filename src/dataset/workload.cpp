#include "dataset/workload.h"

#include <cassert>
#include <cmath>

namespace dhnsw {

QueryStream::QueryStream(const VectorSet& base, WorkloadSpec spec)
    : base_(base), spec_(std::move(spec)), rng_(spec_.seed) {
  assert(!base.empty());
  if (!spec_.row_topics.empty()) {
    assert(spec_.row_topics.size() == base.size());
    uint32_t max_topic = 0;
    for (uint32_t t : spec_.row_topics) max_topic = std::max(max_topic, t);
    spec_.num_topics = max_topic + 1;
    topic_rows_.resize(spec_.num_topics);
    for (uint32_t row = 0; row < spec_.row_topics.size(); ++row) {
      topic_rows_[spec_.row_topics[row]].push_back(row);
    }
  }
  spec_.num_topics = std::max<uint32_t>(1, std::min<uint32_t>(
      spec_.num_topics, static_cast<uint32_t>(base.size())));
  spec_.hot_topics = std::max<uint32_t>(1, std::min(spec_.hot_topics, spec_.num_topics));

  if (spec_.shape == WorkloadShape::kZipfian) {
    zipf_cdf_.resize(spec_.num_topics);
    double total = 0.0;
    for (uint32_t t = 0; t < spec_.num_topics; ++t) {
      total += 1.0 / std::pow(static_cast<double>(t + 1), spec_.zipf_s);
      zipf_cdf_[t] = total;
    }
    for (double& v : zipf_cdf_) v /= total;
  }

  // Rough per-dimension scale so the query noise is proportional to the
  // data's spread (works for both SIFT-like ~100s and GIST-like ~0.5).
  double abs_sum = 0.0;
  const size_t probe = std::min<size_t>(base.size(), 100);
  for (size_t i = 0; i < probe; ++i) {
    for (float x : base[i]) abs_sum += std::fabs(x);
  }
  noise_scale_ = static_cast<float>(
      abs_sum / (static_cast<double>(probe) * base.dim()) + 1e-6);
}

uint32_t QueryStream::TopicOf(size_t base_row) const noexcept {
  if (!spec_.row_topics.empty()) return spec_.row_topics[base_row];
  return static_cast<uint32_t>(base_row * spec_.num_topics / base_.size());
}

size_t QueryStream::DrawRow() {
  const size_t n = base_.size();
  const uint32_t topics = spec_.num_topics;
  uint32_t topic = 0;
  switch (spec_.shape) {
    case WorkloadShape::kUniform:
      return rng_.NextBounded(n);
    case WorkloadShape::kZipfian: {
      const double u = rng_.NextDouble();
      // CDF is tiny (<= num_topics entries); linear scan is fine.
      while (topic + 1 < topics && zipf_cdf_[topic] < u) ++topic;
      break;
    }
    case WorkloadShape::kDrifting:
      topic = (drift_offset_ + static_cast<uint32_t>(rng_.NextBounded(spec_.hot_topics))) %
              topics;
      break;
  }
  if (!topic_rows_.empty()) {
    // Explicit-map mode: hop to the next non-empty topic if needed.
    uint32_t probe = topic;
    while (topic_rows_[probe].empty()) probe = (probe + 1) % topics;
    const auto& rows = topic_rows_[probe];
    return rows[rng_.NextBounded(rows.size())];
  }
  const size_t lo = static_cast<size_t>(topic) * n / topics;
  const size_t hi = static_cast<size_t>(topic + 1) * n / topics;
  return lo + rng_.NextBounded(std::max<size_t>(hi - lo, 1));
}

VectorSet QueryStream::NextBatch(size_t count) {
  VectorSet out(base_.dim());
  out.Reserve(count);
  std::vector<float> q(base_.dim());
  for (size_t i = 0; i < count; ++i) {
    const size_t row = DrawRow();
    const auto src = base_[row];
    for (uint32_t d = 0; d < base_.dim(); ++d) {
      q[d] = src[d] + spec_.noise_stddev * noise_scale_ *
                          static_cast<float>(rng_.NextGaussian());
    }
    out.Append(q);
  }
  if (spec_.shape == WorkloadShape::kDrifting) {
    drift_offset_ = (drift_offset_ + 1) % spec_.num_topics;
  }
  return out;
}

}  // namespace dhnsw
