#include "dataset/ground_truth.h"

#include <cassert>

#include "common/thread_pool.h"
#include "index/flat_index.h"

namespace dhnsw {

void ComputeGroundTruth(Dataset* ds, uint32_t k, Metric metric, size_t num_threads) {
  assert(ds != nullptr && !ds->base.empty());
  FlatIndex flat(ds->base.dim(), metric);
  flat.AddBatch(ds->base.flat());

  const size_t nq = ds->queries.size();
  ds->gt_k = k;
  ds->ground_truth.assign(nq * k, 0);

  auto run_one = [&](size_t qi) {
    const std::vector<Scored> top = flat.Search(ds->queries[qi], k);
    for (size_t j = 0; j < k; ++j) {
      // If the base set is smaller than k, repeat the last id (tests only).
      const size_t src = j < top.size() ? j : top.size() - 1;
      ds->ground_truth[qi * k + j] = top[src].id;
    }
  };

  if (num_threads > 1) {
    ThreadPool pool(num_threads);
    pool.ParallelFor(nq, run_one);
  } else {
    for (size_t qi = 0; qi < nq; ++qi) run_one(qi);
  }
}

double RecallAtK(std::span<const Scored> found, std::span<const uint32_t> exact, size_t k) {
  if (k == 0) return 0.0;
  assert(exact.size() >= k);
  size_t hits = 0;
  for (size_t i = 0; i < k; ++i) {
    const uint32_t want = exact[i];
    for (size_t j = 0; j < std::min(found.size(), k); ++j) {
      if (found[j].id == want) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double MeanRecallAtK(const Dataset& ds, const std::vector<std::vector<Scored>>& results,
                     size_t k) {
  assert(results.size() == ds.queries.size());
  assert(ds.gt_k >= k);
  if (results.empty()) return 0.0;
  double total = 0.0;
  for (size_t qi = 0; qi < results.size(); ++qi) {
    total += RecallAtK(results[qi], ds.GroundTruthFor(qi), k);
  }
  return total / static_cast<double>(results.size());
}

}  // namespace dhnsw
