// Query-stream workload generators.
//
// The paper evaluates with uniformly drawn queries per batch; real serving
// traffic is skewed (popular topics dominate) and drifts over time. These
// generators shape query streams over an existing dataset so the cache and
// batching experiments can be run against realistic access patterns:
//   - Uniform:   every query picks a random base region (paper's setup),
//   - Zipfian:   topics are ranked and sampled with power-law popularity —
//                cross-batch cache hit rates depend strongly on this,
//   - Drifting:  a sliding hot-set that moves each batch, stressing cache
//                churn and the "retain for the next batch" policy (§3.3).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "dataset/dataset.h"

namespace dhnsw {

enum class WorkloadShape : uint8_t { kUniform, kZipfian, kDrifting };

struct WorkloadSpec {
  WorkloadShape shape = WorkloadShape::kUniform;
  double zipf_s = 1.1;          ///< Zipf exponent (kZipfian)
  uint32_t num_topics = 32;     ///< popularity buckets over the base set
  uint32_t hot_topics = 4;      ///< size of the moving hot-set (kDrifting)
  float noise_stddev = 0.05f;   ///< query = base vector + noise * this * scale
  uint64_t seed = 1;
  /// Optional explicit row -> topic map (e.g. the partitioner's assignment,
  /// making topics == d-HNSW partitions so skew concentrates cluster
  /// demand). Empty: topic t covers the contiguous slice [t*n/T, (t+1)*n/T).
  std::vector<uint32_t> row_topics;
};

/// Draws query batches over `base`: each query is a noisy copy of a base
/// vector picked according to the workload shape.
class QueryStream {
 public:
  QueryStream(const VectorSet& base, WorkloadSpec spec);

  /// Produces the next batch of `count` queries. For kDrifting, each call
  /// advances the hot-set by one topic.
  VectorSet NextBatch(size_t count);

  /// Topic a given base row belongs to (test/analysis hook).
  uint32_t TopicOf(size_t base_row) const noexcept;

 private:
  size_t DrawRow();

  const VectorSet& base_;
  WorkloadSpec spec_;
  Xoshiro256 rng_;
  std::vector<double> zipf_cdf_;  ///< precomputed topic CDF for kZipfian
  /// topic -> member rows (explicit-map mode); empty in contiguous mode.
  std::vector<std::vector<uint32_t>> topic_rows_;
  uint32_t drift_offset_ = 0;
  float noise_scale_ = 1.0f;      ///< estimated per-dim data scale
};

}  // namespace dhnsw
