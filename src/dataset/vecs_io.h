// Readers/writers for the TEXMEX vector file formats used by SIFT1M/GIST1M:
//   .fvecs — per row: int32 dim, then dim float32
//   .ivecs — per row: int32 dim, then dim int32 (ground-truth ids)
//   .bvecs — per row: int32 dim, then dim uint8
// With these, the real datasets drop into every bench via --base/--query
// flags in place of the synthetic generators.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "dataset/dataset.h"

namespace dhnsw {

/// Reads an .fvecs file; `max_rows` = 0 means all rows.
Result<VectorSet> ReadFvecs(const std::string& path, size_t max_rows = 0);

/// Reads an .ivecs file into row-major uint32 ids; returns (rows x row_dim).
struct IvecsData {
  uint32_t row_dim = 0;
  std::vector<uint32_t> values;
  size_t rows() const { return row_dim == 0 ? 0 : values.size() / row_dim; }
};
Result<IvecsData> ReadIvecs(const std::string& path, size_t max_rows = 0);

/// Reads a .bvecs file, widening bytes to float.
Result<VectorSet> ReadBvecs(const std::string& path, size_t max_rows = 0);

Status WriteFvecs(const std::string& path, const VectorSet& vectors);
Status WriteIvecs(const std::string& path, const IvecsData& data);

}  // namespace dhnsw
