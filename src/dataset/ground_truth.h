// Exact ground truth and recall measurement.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/topk.h"
#include "dataset/dataset.h"
#include "index/distance.h"

namespace dhnsw {

/// Fills `ds->ground_truth` with the exact top-`k` ids for every query
/// (brute force over the base set; optionally parallel).
void ComputeGroundTruth(Dataset* ds, uint32_t k, Metric metric = Metric::kL2,
                        size_t num_threads = 1);

/// recall@k of one result list against the exact ids (|found ∩ exact| / k).
double RecallAtK(std::span<const Scored> found, std::span<const uint32_t> exact, size_t k);

/// Mean recall@k over a whole query set. `results[i]` is the answer for
/// query i; ds must carry ground truth with gt_k >= k.
double MeanRecallAtK(const Dataset& ds, const std::vector<std::vector<Scored>>& results,
                     size_t k);

}  // namespace dhnsw
