#include "dataset/vecs_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

namespace dhnsw {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr OpenFile(const std::string& path, const char* mode) {
  return FilePtr(std::fopen(path.c_str(), mode));
}

Status ReadExact(std::FILE* f, void* dst, size_t bytes, const char* what) {
  if (std::fread(dst, 1, bytes, f) != bytes) {
    return Status::Corruption(std::string("truncated ") + what);
  }
  return Status::Ok();
}

}  // namespace

Result<VectorSet> ReadFvecs(const std::string& path, size_t max_rows) {
  FilePtr f = OpenFile(path, "rb");
  if (!f) return Status::IoError("cannot open " + path);

  uint32_t dim = 0;
  std::vector<float> data;
  std::vector<float> row;
  size_t rows = 0;
  for (;;) {
    int32_t row_dim;
    const size_t got = std::fread(&row_dim, 1, sizeof row_dim, f.get());
    if (got == 0) break;  // clean EOF
    if (got != sizeof row_dim) return Status::Corruption("truncated fvecs header in " + path);
    if (row_dim <= 0 || row_dim > (1 << 20)) {
      return Status::Corruption("implausible fvecs dimension in " + path);
    }
    if (dim == 0) {
      dim = static_cast<uint32_t>(row_dim);
    } else if (dim != static_cast<uint32_t>(row_dim)) {
      return Status::Corruption("inconsistent fvecs dimensions in " + path);
    }
    row.resize(dim);
    DHNSW_RETURN_IF_ERROR(ReadExact(f.get(), row.data(), dim * sizeof(float), "fvecs row"));
    data.insert(data.end(), row.begin(), row.end());
    if (++rows == max_rows && max_rows != 0) break;
  }
  if (dim == 0) return Status::Corruption("empty fvecs file " + path);
  return VectorSet(dim, std::move(data));
}

Result<IvecsData> ReadIvecs(const std::string& path, size_t max_rows) {
  FilePtr f = OpenFile(path, "rb");
  if (!f) return Status::IoError("cannot open " + path);

  IvecsData out;
  std::vector<int32_t> row;
  size_t rows = 0;
  for (;;) {
    int32_t row_dim;
    const size_t got = std::fread(&row_dim, 1, sizeof row_dim, f.get());
    if (got == 0) break;
    if (got != sizeof row_dim) return Status::Corruption("truncated ivecs header in " + path);
    if (row_dim <= 0 || row_dim > (1 << 20)) {
      return Status::Corruption("implausible ivecs dimension in " + path);
    }
    if (out.row_dim == 0) {
      out.row_dim = static_cast<uint32_t>(row_dim);
    } else if (out.row_dim != static_cast<uint32_t>(row_dim)) {
      return Status::Corruption("inconsistent ivecs dimensions in " + path);
    }
    row.resize(out.row_dim);
    DHNSW_RETURN_IF_ERROR(
        ReadExact(f.get(), row.data(), out.row_dim * sizeof(int32_t), "ivecs row"));
    for (int32_t v : row) out.values.push_back(static_cast<uint32_t>(v));
    if (++rows == max_rows && max_rows != 0) break;
  }
  if (out.row_dim == 0) return Status::Corruption("empty ivecs file " + path);
  return out;
}

Result<VectorSet> ReadBvecs(const std::string& path, size_t max_rows) {
  FilePtr f = OpenFile(path, "rb");
  if (!f) return Status::IoError("cannot open " + path);

  uint32_t dim = 0;
  std::vector<float> data;
  std::vector<uint8_t> row;
  size_t rows = 0;
  for (;;) {
    int32_t row_dim;
    const size_t got = std::fread(&row_dim, 1, sizeof row_dim, f.get());
    if (got == 0) break;
    if (got != sizeof row_dim) return Status::Corruption("truncated bvecs header in " + path);
    if (row_dim <= 0 || row_dim > (1 << 20)) {
      return Status::Corruption("implausible bvecs dimension in " + path);
    }
    if (dim == 0) {
      dim = static_cast<uint32_t>(row_dim);
    } else if (dim != static_cast<uint32_t>(row_dim)) {
      return Status::Corruption("inconsistent bvecs dimensions in " + path);
    }
    row.resize(dim);
    DHNSW_RETURN_IF_ERROR(ReadExact(f.get(), row.data(), dim, "bvecs row"));
    for (uint8_t b : row) data.push_back(static_cast<float>(b));
    if (++rows == max_rows && max_rows != 0) break;
  }
  if (dim == 0) return Status::Corruption("empty bvecs file " + path);
  return VectorSet(dim, std::move(data));
}

Status WriteFvecs(const std::string& path, const VectorSet& vectors) {
  FilePtr f = OpenFile(path, "wb");
  if (!f) return Status::IoError("cannot open " + path + " for writing");
  const int32_t dim = static_cast<int32_t>(vectors.dim());
  for (size_t i = 0; i < vectors.size(); ++i) {
    if (std::fwrite(&dim, 1, sizeof dim, f.get()) != sizeof dim ||
        std::fwrite(vectors[i].data(), 1, vectors.dim() * sizeof(float), f.get()) !=
            vectors.dim() * sizeof(float)) {
      return Status::IoError("short write to " + path);
    }
  }
  return Status::Ok();
}

Status WriteIvecs(const std::string& path, const IvecsData& data) {
  FilePtr f = OpenFile(path, "wb");
  if (!f) return Status::IoError("cannot open " + path + " for writing");
  const int32_t dim = static_cast<int32_t>(data.row_dim);
  for (size_t r = 0; r < data.rows(); ++r) {
    if (std::fwrite(&dim, 1, sizeof dim, f.get()) != sizeof dim) {
      return Status::IoError("short write to " + path);
    }
    for (uint32_t c = 0; c < data.row_dim; ++c) {
      const int32_t v = static_cast<int32_t>(data.values[r * data.row_dim + c]);
      if (std::fwrite(&v, 1, sizeof v, f.get()) != sizeof v) {
        return Status::IoError("short write to " + path);
      }
    }
  }
  return Status::Ok();
}

}  // namespace dhnsw
