// Synthetic dataset generators.
//
// The paper evaluates on SIFT1M (128-d) and GIST1M (960-d). Those corpora are
// not redistributable here, so we synthesize *clustered Gaussian* data with
// the same dimensionality: `num_clusters` centers drawn uniformly in a cube,
// points drawn N(center, cluster_stddev^2 I), queries drawn the same way from
// the same centers (so queries land inside the data distribution, as real
// image descriptors do). Clusteredness is what the meta-HNSW partitioning
// exploits, and dimension drives the bytes-per-vector that dominate network
// transfer — both are preserved. Real .fvecs files drop in via vecs_io.h.
#pragma once

#include <cstdint>

#include "dataset/dataset.h"

namespace dhnsw {

struct SyntheticSpec {
  uint32_t dim = 128;
  uint32_t num_base = 60000;
  uint32_t num_queries = 1000;
  uint32_t num_clusters = 100;
  float box_half_width = 100.0f;  ///< centers uniform in [-w, w]^dim
  float cluster_stddev = 8.0f;
  uint64_t seed = 20250706;
  const char* name = "synthetic";
};

/// Generates base + query sets per `spec` (ground truth left empty).
Dataset MakeSynthetic(const SyntheticSpec& spec);

/// 128-dimensional SIFT1M-shaped instance (paper Fig. 6a/b, Table 1).
Dataset MakeSiftLike(uint32_t num_base, uint32_t num_queries, uint64_t seed = 1);

/// 960-dimensional GIST1M-shaped instance (paper Fig. 6c/d, Table 2).
Dataset MakeGistLike(uint32_t num_base, uint32_t num_queries, uint64_t seed = 2);

/// Unclustered uniform data — the adversarial case for partition routing;
/// used by tests and the ablation benches.
Dataset MakeUniform(uint32_t dim, uint32_t num_base, uint32_t num_queries, uint64_t seed = 3);

}  // namespace dhnsw
