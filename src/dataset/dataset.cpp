#include "dataset/dataset.h"

#include <cassert>

namespace dhnsw {

VectorSet::VectorSet(uint32_t dim, std::vector<float> data)
    : dim_(dim), data_(std::move(data)) {
  assert(dim_ > 0 && data_.size() % dim_ == 0);
}

void VectorSet::Append(std::span<const float> v) {
  assert(v.size() == dim_);
  data_.insert(data_.end(), v.begin(), v.end());
}

}  // namespace dhnsw
