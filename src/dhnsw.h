// Umbrella header: everything a downstream application needs.
//
//   #include "dhnsw.h"
//
//   dhnsw::Dataset ds = dhnsw::MakeSiftLike(100000, 1000);
//   auto engine = dhnsw::DhnswEngine::Build(ds.base,
//                                           dhnsw::DhnswConfig::Defaults());
//   auto result = engine.value().SearchAll(ds.queries, 10, 48);
//
// Individual module headers remain includable for finer-grained use.
#pragma once

#include "common/status.h"        // Status, Result<T>
#include "common/topk.h"          // Scored, TopKHeap
#include "core/client_router.h"   // ClientRouter, RouterResult
#include "core/compactor.h"       // Compactor, CompactionStats
#include "core/compute_node.h"    // ComputeNode, ComputeOptions, BatchResult
#include "core/engine.h"          // DhnswEngine, DhnswConfig
#include "core/memory_node.h"     // MemoryNode, MemoryNodeHandle
#include "core/meta_hnsw.h"       // MetaHnsw
#include "core/snapshot.h"        // SaveRegionSnapshot, LoadRegionSnapshot
#include "dataset/dataset.h"      // VectorSet, Dataset
#include "dataset/ground_truth.h" // ComputeGroundTruth, recall
#include "dataset/synthetic.h"    // MakeSiftLike, MakeGistLike, MakeSynthetic
#include "dataset/vecs_io.h"      // ReadFvecs / WriteFvecs / ...
#include "dataset/workload.h"     // QueryStream
#include "index/distance.h"       // Metric, kernels
#include "index/flat_index.h"     // FlatIndex (exact baseline)
#include "index/hnsw.h"           // HnswIndex
#include "rdma/fabric.h"          // simulated fabric
#include "rdma/queue_pair.h"      // one-sided verbs endpoint
