// RAG-style retrieval (the paper's motivating application, §1): a document
// corpus is embedded into vectors stored on the disaggregated memory pool;
// user prompts arrive in batches at the compute pool, which retrieves the
// top-k semantically closest passages for each prompt before the LLM call.
//
// Embeddings are synthesized here: each "topic" is a cluster center and each
// document/prompt a noisy sample of its topic — structurally what a sentence
// encoder produces. Cosine distance, as is standard for text embeddings.
//
//   $ ./build/examples/rag_pipeline
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "dataset/dataset.h"

namespace {

constexpr uint32_t kDim = 256;       // embedding width
constexpr uint32_t kTopics = 12;
constexpr uint32_t kDocsPerTopic = 400;

const char* kTopicNames[kTopics] = {
    "databases", "networking", "operating systems", "compilers",
    "machine learning", "security", "graphics", "distributed systems",
    "storage", "architecture", "quantum computing", "robotics"};

std::vector<float> Embed(dhnsw::Xoshiro256& rng, const std::vector<float>& topic_center) {
  std::vector<float> v(kDim);
  for (uint32_t d = 0; d < kDim; ++d) {
    v[d] = topic_center[d] + 0.35f * static_cast<float>(rng.NextGaussian());
  }
  return v;
}

}  // namespace

int main() {
  using namespace dhnsw;
  Xoshiro256 rng(2026);

  // --- corpus ingestion: embed 4800 documents across 12 topics ---
  std::vector<std::vector<float>> topic_centers(kTopics, std::vector<float>(kDim));
  for (auto& center : topic_centers) {
    for (auto& x : center) x = static_cast<float>(rng.NextGaussian());
  }
  VectorSet corpus(kDim);
  std::vector<uint32_t> doc_topic;
  for (uint32_t t = 0; t < kTopics; ++t) {
    for (uint32_t i = 0; i < kDocsPerTopic; ++i) {
      corpus.Append(Embed(rng, topic_centers[t]));
      doc_topic.push_back(t);
    }
  }
  std::printf("corpus: %zu docs, %u-d embeddings, %u topics\n", corpus.size(), kDim,
              kTopics);

  // --- index build on the disaggregated memory pool ---
  DhnswConfig config = DhnswConfig::Defaults(Metric::kCosine);
  config.meta.num_representatives = 48;
  config.compute.clusters_per_query = 3;
  config.compute.cache_capacity = 8;
  auto engine = DhnswEngine::Build(corpus, config);
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // --- a batch of user prompts, one per topic (plus two mixtures) ---
  VectorSet prompts(kDim);
  std::vector<std::string> prompt_labels;
  for (uint32_t t = 0; t < kTopics; t += 3) {
    prompts.Append(Embed(rng, topic_centers[t]));
    prompt_labels.push_back(std::string("prompt about ") + kTopicNames[t]);
  }

  auto result = engine.value().SearchAll(prompts, /*k=*/5, /*ef_search=*/48);
  if (!result.ok()) {
    std::fprintf(stderr, "retrieval failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // --- report: retrieved passages should match the prompt's topic ---
  size_t on_topic = 0, total = 0;
  for (size_t qi = 0; qi < prompts.size(); ++qi) {
    std::printf("\n%s -> retrieved docs:", prompt_labels[qi].c_str());
    for (const Scored& s : result.value().results[qi]) {
      std::printf(" #%u(%s)", s.id, kTopicNames[doc_topic[s.id]]);
      on_topic += (doc_topic[s.id] == doc_topic[result.value().results[qi][0].id]);
      ++total;
    }
  }
  const BatchBreakdown& b = result.value().breakdown;
  std::printf("\n\ntopical consistency: %zu/%zu retrieved docs share the top hit's topic\n",
              on_topic, total);
  std::printf("network: %.1f us, %.4f round trips/prompt, %lu cluster loads\n",
              b.network_us, b.per_query_round_trips(),
              static_cast<unsigned long>(b.clusters_loaded));
  return 0;
}
