// Memory-pool tour: a deployment with THREE memory instances and FOUR
// compute instances (paper Fig. 2 shows both pools as multi-instance).
// Shows sharded provisioning, load-balanced queries through the client
// router, a shard outage surfacing cleanly, and the engine metrics view.
//
//   $ ./build/examples/memory_pool_tour
#include <cstdio>

#include "core/engine.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"

int main() {
  using namespace dhnsw;

  Dataset ds = MakeSiftLike(12000, 400);
  ComputeGroundTruth(&ds, 10);

  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 48;
  config.compute.clusters_per_query = 4;
  config.compute.cache_capacity = 6;
  config.num_memory_nodes = 3;   // memory pool
  config.num_compute_nodes = 4;  // compute pool
  auto engine = DhnswEngine::Build(ds.base, config);
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  const MemoryNodeHandle& handle = engine.value().memory_handle();
  std::printf("memory pool: %zu instances; cluster groups shard round-robin\n",
              handle.num_shards());
  for (uint32_t s = 0; s < handle.num_shards(); ++s) {
    const auto* region = engine.value().fabric().FindRegion(handle.rkey_for_slot(s));
    std::printf("  shard %u (%s): %.2f MB\n", s,
                engine.value().fabric().NodeName(handle.shard_nodes[s]).c_str(),
                static_cast<double>(region->size()) / (1 << 20));
  }

  // Load-balanced batch across the compute pool.
  auto sharded = engine.value().SearchSharded(ds.queries, 10, 48);
  if (!sharded.ok()) {
    std::fprintf(stderr, "sharded search failed: %s\n",
                 sharded.status().ToString().c_str());
    return 1;
  }
  std::printf("\nsharded batch over %zu compute instances:\n",
              engine.value().num_compute_nodes());
  std::printf("  recall@10     : %.4f\n",
              MeanRecallAtK(ds, sharded.value().results, 10));
  std::printf("  batch latency : %.1f us (slowest shard)\n",
              sharded.value().batch_latency_us);
  std::printf("  throughput    : %.0f queries/s\n", sharded.value().throughput_qps);

  // Shard outage: queries that need clusters on the dead shard fail loudly
  // (no silent partial answers), and recover when it returns.
  engine.value().fabric().SetNodeReachable(handle.shard_nodes[2], false);
  for (size_t i = 0; i < engine.value().num_compute_nodes(); ++i) {
    engine.value().compute(i).InvalidateCache();
  }
  auto during_outage = engine.value().SearchAll(ds.queries, 10, 48);
  std::printf("\nshard 2 down: search %s (%s)\n",
              during_outage.ok() ? "unexpectedly succeeded" : "failed loudly",
              during_outage.status().ToString().c_str());
  engine.value().fabric().SetNodeReachable(handle.shard_nodes[2], true);
  auto after_recovery = engine.value().SearchAll(ds.queries, 10, 48);
  std::printf("shard 2 back: search %s\n", after_recovery.ok() ? "recovered" : "STILL FAILING");

  std::printf("\n%s\n", engine.value().DebugString().c_str());
  return after_recovery.ok() && !during_outage.ok() ? 0 : 1;
}
