// Snapshot & restart: persist a provisioned memory region to local storage
// (each paper testbed node has a 1.6 TB NVMe SSD) and warm-boot a new
// deployment from it — skipping sampling, partitioning, and graph
// construction entirely.
//
//   $ ./build/examples/snapshot_restart
#include <cstdio>
#include <string>

#include "common/timer.h"
#include "core/engine.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"

int main() {
  using namespace dhnsw;

  Dataset ds = MakeSiftLike(8000, 100);
  ComputeGroundTruth(&ds, 10);

  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 40;
  config.compute.clusters_per_query = 4;
  config.compute.cache_capacity = 6;

  // Cold build.
  WallTimer build_timer;
  auto engine = DhnswEngine::Build(ds.base, config);
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  const double build_ms = build_timer.elapsed_ms();

  // Ingest a few fresh vectors so the snapshot carries overflow state too.
  for (int i = 0; i < 25; ++i) {
    std::vector<float> v(ds.base[i].begin(), ds.base[i].end());
    v[0] += 1.0f;
    if (!engine.value().Insert(v).ok()) break;
  }

  const std::string path = "/tmp/dhnsw_region.dsnp";
  WallTimer save_timer;
  if (Status st = engine.value().SaveSnapshot(path); !st.ok()) {
    std::fprintf(stderr, "snapshot failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const double save_ms = save_timer.elapsed_ms();

  // "Restart": a brand-new fabric + engine from the file.
  WallTimer restore_timer;
  auto restored = DhnswEngine::BuildFromSnapshot(
      path, config, engine.value().next_global_id());
  if (!restored.ok()) {
    std::fprintf(stderr, "restore failed: %s\n", restored.status().ToString().c_str());
    return 1;
  }
  const double restore_ms = restore_timer.elapsed_ms();

  auto r1 = engine.value().SearchAll(ds.queries, 10, 48);
  auto r2 = restored.value().SearchAll(ds.queries, 10, 48);
  if (!r1.ok() || !r2.ok()) {
    std::fprintf(stderr, "search failed after restore\n");
    return 1;
  }
  size_t identical = 0;
  for (size_t qi = 0; qi < ds.queries.size(); ++qi) {
    const auto& a = r1.value().results[qi];
    const auto& b = r2.value().results[qi];
    bool same = a.size() == b.size();
    for (size_t j = 0; same && j < a.size(); ++j) same = a[j].id == b[j].id;
    identical += same;
  }

  std::printf("cold build        : %8.1f ms\n", build_ms);
  std::printf("snapshot save     : %8.1f ms\n", save_ms);
  std::printf("warm restore      : %8.1f ms  (%.1fx faster than building)\n",
              restore_ms, build_ms / restore_ms);
  std::printf("identical answers : %zu/%zu queries\n", identical, ds.queries.size());
  std::printf("restored recall@10: %.4f\n",
              MeanRecallAtK(ds, r2.value().results, 10));
  std::remove(path.c_str());
  return identical == ds.queries.size() ? 0 : 1;
}
