// Quickstart: build a d-HNSW system over a synthetic dataset and run a
// batched top-k query — the five lines a new user needs.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/engine.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"

int main() {
  using namespace dhnsw;

  // 1. Data: 10k 128-d vectors + 100 queries (swap in ReadFvecs for real data).
  Dataset ds = MakeSiftLike(/*num_base=*/10000, /*num_queries=*/100);
  ComputeGroundTruth(&ds, /*k=*/10);  // optional: only needed to report recall

  // 2. Configure: sample 50 representatives for the meta-HNSW; each query
  //    fans out to its 4 closest partitions; the compute cache holds 5.
  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 50;
  config.compute.clusters_per_query = 4;
  config.compute.cache_capacity = 5;

  // 3. Build: samples the meta-HNSW, partitions the data into sub-HNSWs,
  //    lays them out in (simulated) remote memory, connects a compute node.
  auto engine = DhnswEngine::Build(ds.base, config);
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n", engine.status().ToString().c_str());
    return 1;
  }

  // 4. Query: one batched call for the whole query set.
  auto result = engine.value().SearchAll(ds.queries, /*k=*/10, /*ef_search=*/48);
  if (!result.ok()) {
    std::fprintf(stderr, "search failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // 5. Inspect: answers + the disaggregation cost profile.
  const BatchBreakdown& b = result.value().breakdown;
  std::printf("recall@10    : %.4f\n", MeanRecallAtK(ds, result.value().results, 10));
  std::printf("network time : %.1f us for the whole batch (%.3f us/query)\n",
              b.network_us, b.per_query_network_us());
  std::printf("round trips  : %lu total (%.4f per query)\n",
              static_cast<unsigned long>(b.round_trips), b.per_query_round_trips());
  std::printf("top-3 for q0 :");
  for (size_t i = 0; i < 3 && i < result.value().results[0].size(); ++i) {
    const Scored& s = result.value().results[0][i];
    std::printf("  id=%u d=%.1f", s.id, s.distance);
  }
  std::printf("\n");
  return 0;
}
