// Recommendation-system retrieval (paper §1 cites recommendation as a core
// vector-DB workload): item embeddings live in the memory pool; for each
// user's taste vector the compute pool retrieves candidate items by inner
// product (the classic matrix-factorization setup, where higher dot product
// means stronger preference).
//
// Demonstrates: inner-product metric, batched retrieval for a user cohort,
// and the cross-batch cache paying off when cohorts share taste clusters.
//
//   $ ./build/examples/recommend_users
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "dataset/dataset.h"

namespace {

constexpr uint32_t kDim = 64;
constexpr uint32_t kGenres = 20;
constexpr uint32_t kItemsPerGenre = 300;

}  // namespace

int main() {
  using namespace dhnsw;
  Xoshiro256 rng(7);

  // Item embeddings: unit-ish vectors around genre directions.
  std::vector<std::vector<float>> genres(kGenres, std::vector<float>(kDim));
  for (auto& g : genres) {
    for (auto& x : g) x = static_cast<float>(rng.NextGaussian());
  }
  VectorSet items(kDim);
  std::vector<uint32_t> item_genre;
  for (uint32_t g = 0; g < kGenres; ++g) {
    for (uint32_t i = 0; i < kItemsPerGenre; ++i) {
      std::vector<float> v(kDim);
      for (uint32_t d = 0; d < kDim; ++d) {
        v[d] = genres[g][d] + 0.3f * static_cast<float>(rng.NextGaussian());
      }
      items.Append(v);
      item_genre.push_back(g);
    }
  }

  DhnswConfig config = DhnswConfig::Defaults(Metric::kInnerProduct);
  config.meta.num_representatives = 40;
  config.compute.clusters_per_query = 4;
  config.compute.cache_capacity = 6;
  auto engine = DhnswEngine::Build(items, config);
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("catalog: %zu items, %u genres; %u partitions on the memory pool\n",
              items.size(), kGenres, engine.value().num_partitions());

  // Two cohorts of users. Cohort B's tastes overlap cohort A's genres, so
  // its batch should hit clusters cached by cohort A's batch.
  auto make_cohort = [&](uint32_t genre_lo, uint32_t genre_hi, size_t n) {
    VectorSet cohort(kDim);
    for (size_t u = 0; u < n; ++u) {
      const uint32_t g = genre_lo + static_cast<uint32_t>(
          rng.NextBounded(genre_hi - genre_lo));
      std::vector<float> taste(kDim);
      for (uint32_t d = 0; d < kDim; ++d) {
        taste[d] = genres[g][d] + 0.4f * static_cast<float>(rng.NextGaussian());
      }
      cohort.Append(taste);
    }
    return cohort;
  };
  const VectorSet cohort_a = make_cohort(0, 8, 200);
  const VectorSet cohort_b = make_cohort(4, 12, 200);  // overlaps genres 4..8

  auto run = [&](const char* name, const VectorSet& cohort) {
    auto result = engine.value().compute(0).SearchAll(cohort, /*k=*/10, /*ef_search=*/32);
    if (!result.ok()) {
      std::fprintf(stderr, "recommend failed: %s\n", result.status().ToString().c_str());
      std::exit(1);
    }
    const BatchBreakdown& b = result.value().breakdown;
    std::printf("%-10s loads=%3lu  cache_hits=%3lu  network=%9.1f us  RT/user=%.4f\n",
                name, static_cast<unsigned long>(b.clusters_loaded),
                static_cast<unsigned long>(b.cache_hits), b.network_us,
                b.per_query_round_trips());
    return result.value().results;
  };

  const auto recs_a = run("cohort A", cohort_a);
  const auto recs_b = run("cohort B", cohort_b);  // warm: reuses A's clusters

  // Sanity: a user's recommendations should concentrate in few genres.
  size_t concentrated = 0;
  for (const auto& recs : recs_a) {
    uint32_t histogram[kGenres] = {};
    for (const Scored& s : recs) ++histogram[item_genre[s.id]];
    for (uint32_t g = 0; g < kGenres; ++g) {
      if (histogram[g] >= 7) {
        ++concentrated;
        break;
      }
    }
  }
  std::printf("%zu/%zu cohort-A users get >=7/10 recommendations from one genre\n",
              concentrated, recs_a.size());
  std::printf("sample recs for user 0:");
  for (size_t i = 0; i < 5; ++i) {
    std::printf(" item#%u(genre %u)", recs_a[0][i].id, item_genre[recs_a[0][i].id]);
  }
  std::printf("\n");
  return 0;
}
