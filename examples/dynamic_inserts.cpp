// Dynamic ingestion (paper §3.2): new vectors stream in while queries run.
// Each insert is routed by the compute-cached meta-HNSW, claims overflow
// space with a remote Fetch-And-Add, and lands next to its sub-HNSW with a
// single RDMA_WRITE — so later queries pick it up with the same one-READ
// cluster load.
//
// Simulates a freshness-sensitive workload: ingest news embeddings in waves,
// querying between waves, and show that (a) fresh items are immediately
// retrievable, (b) insert cost stays at ~2 round trips, (c) when a group's
// shared overflow fills, the engine reports Capacity instead of corrupting.
//
//   $ ./build/examples/dynamic_inserts
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "dataset/synthetic.h"

int main() {
  using namespace dhnsw;

  // Yesterday's corpus.
  Dataset ds = MakeSynthetic({.dim = 96, .num_base = 6000, .num_queries = 0,
                              .num_clusters = 30, .box_half_width = 50.0f,
                              .cluster_stddev = 6.0f, .seed = 11,
                              .name = "news-embeddings"});

  DhnswConfig config = DhnswConfig::Defaults();
  config.meta.num_representatives = 30;
  config.compute.clusters_per_query = 3;
  config.compute.cache_capacity = 5;
  // Overflow sized for ~60 fresh items per cluster pair.
  config.layout.overflow_bytes_per_group = 60 * (8 + 96 * 4);
  auto engine = DhnswEngine::Build(ds.base, config);
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  std::printf("base corpus: %zu vectors in %u partitions\n", ds.base.size(),
              engine.value().num_partitions());

  Xoshiro256 rng(13);
  ComputeNode& node = engine.value().compute(0);

  uint32_t total_ok = 0, total_capacity = 0;
  for (int wave = 0; wave < 3; ++wave) {
    // Ingest 150 fresh items near random existing stories.
    std::vector<std::vector<float>> fresh;
    const auto stats_before = node.qp_stats();
    uint32_t ok = 0;
    for (int i = 0; i < 150; ++i) {
      const size_t src = rng.NextBounded(ds.base.size());
      std::vector<float> v(ds.base[src].begin(), ds.base[src].end());
      for (auto& x : v) x += 0.5f * static_cast<float>(rng.NextGaussian());
      auto id = engine.value().Insert(v);
      if (id.ok()) {
        fresh.push_back(std::move(v));
        ++ok;
      } else if (id.status().code() == StatusCode::kCapacity) {
        ++total_capacity;
      } else {
        std::fprintf(stderr, "insert error: %s\n", id.status().ToString().c_str());
        return 1;
      }
    }
    total_ok += ok;
    const auto delta = node.qp_stats() - stats_before;
    std::printf("\nwave %d: %u inserts ok, %.2f round trips per insert\n", wave, ok,
                ok ? static_cast<double>(delta.round_trips) / ok : 0.0);

    // Freshness check: query each inserted vector exactly; it must be the
    // top hit (distance ~ 0 to itself).
    if (!fresh.empty()) {
      VectorSet probes(96);
      for (const auto& v : fresh) probes.Append(v);
      auto result = node.SearchAll(probes, /*k=*/1, /*ef_search=*/32);
      if (!result.ok()) {
        std::fprintf(stderr, "query failed: %s\n", result.status().ToString().c_str());
        return 1;
      }
      size_t found = 0;
      for (const auto& top : result.value().results) {
        if (!top.empty() && top[0].id >= ds.base.size() && top[0].distance < 1e-3f) {
          ++found;
        }
      }
      std::printf("freshness: %zu/%zu fresh items are their own top-1 hit\n", found,
                  fresh.size());
    }
  }

  std::printf("\ntotals: %u inserted, %u rejected with CAPACITY (shared overflow full)\n",
              total_ok, total_capacity);

  // The recovery path: compaction folds the overflow records into the base
  // sub-HNSW graphs and provisions a fresh region with empty overflow.
  auto stats = engine.value().Compact();
  if (!stats.ok()) {
    std::fprintf(stderr, "compaction failed: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("compaction folded %u records across %u clusters; inserting again:\n",
              stats.value().live_records_folded, stats.value().clusters);
  uint32_t post_compact_ok = 0;
  for (int i = 0; i < 50; ++i) {
    const size_t src = rng.NextBounded(ds.base.size());
    std::vector<float> v(ds.base[src].begin(), ds.base[src].end());
    v[0] += 1.0f;
    if (engine.value().Insert(v).ok()) ++post_compact_ok;
  }
  std::printf("post-compaction inserts: %u/50 succeeded\n", post_compact_ok);
  return (total_ok > 0 && post_compact_ok == 50) ? 0 : 1;
}
