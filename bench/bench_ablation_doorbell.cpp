// Ablation A1: the doorbell batch-size tradeoff discussed in paper §3.2 —
// "If too many operations are included in one round-trip, it can interfere
// with other RDMA commands and incur long latency due to the scalability of
// the RDMA NIC." Sweeps the per-ring WR budget D and reports per-batch
// network time; the curve should fall steeply (fewer round trips) and then
// flatten/worsen past the NIC's linear window.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dhnsw::bench;
  BenchConfig config =
      ParseFlags(argc, argv, BenchConfig::ForWorkload(Workload::kSiftLike));
  // More partitions -> more loads per batch -> a richer doorbell curve.
  config.num_representatives = 200;

  std::printf("==== Ablation: doorbell batch size (paper §3.2 tradeoff) ====\n");
  dhnsw::Dataset ds = LoadDataset(config);
  dhnsw::DhnswEngine engine = BuildEngine(ds, config);

  std::printf("\n%10s %14s %12s %14s %10s\n", "doorbell", "net(us/q)", "RT/batch",
              "bytes", "recall");
  for (uint32_t doorbell : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    BenchConfig point = config;
    point.doorbell_batch = doorbell;
    auto node = AttachComputeNode(engine, point, dhnsw::EngineMode::kFull);
    const SweepPoint p = RunPoint(*node, ds, /*k=*/10, /*ef=*/32);
    std::printf("%10u %14.3f %12lu %14s %10.4f\n", doorbell,
                p.breakdown.per_query_network_us(),
                static_cast<unsigned long>(p.breakdown.round_trips),
                FormatBytes(p.breakdown.bytes_read).c_str(), p.recall);
  }
  std::printf("\n# note: NIC model saturates past %u WRs/ring; the gain flattens there.\n",
              engine.fabric().nic_config().doorbell_linear_limit);
  return 0;
}
