// Ablation A5: overflow compaction. As inserts accumulate, every cluster
// load drags its overflow records along and queries linear-scan them;
// compaction folds records into the graphs and resets the overflow. This
// bench quantifies (a) query cost growth with overflow, (b) the compaction
// job's one-sided traffic, (c) the post-compaction recovery.
#include <cstdio>

#include "bench_common.h"
#include "common/rng.h"
#include "dataset/ground_truth.h"

int main(int argc, char** argv) {
  using namespace dhnsw::bench;
  BenchConfig config =
      ParseFlags(argc, argv, BenchConfig::ForWorkload(Workload::kSiftLike));
  config.num_base = 10000;
  config.num_queries = 500;

  std::printf("==== Ablation: overflow compaction ====\n");
  dhnsw::Dataset ds = LoadDataset(config);
  dhnsw::DhnswEngine engine = BuildEngine(ds, config);

  auto measure = [&](const char* phase) {
    auto node = AttachComputeNode(engine, config, dhnsw::EngineMode::kFull);
    const SweepPoint p = RunPoint(*node, ds, 10, 32);
    std::printf("%-24s net=%9.1f us  bytes=%12s  sub+deser=%9.1f us  recall=%.4f\n",
                phase, p.breakdown.network_us,
                FormatBytes(p.breakdown.bytes_read).c_str(),
                p.breakdown.sub_us + p.breakdown.deserialize_us, p.recall);
  };

  measure("fresh build");

  dhnsw::Xoshiro256 rng(31);
  uint32_t inserted = 0;
  for (int i = 0; i < 2000; ++i) {
    const size_t src = rng.NextBounded(ds.base.size());
    std::vector<float> v(ds.base[src].begin(), ds.base[src].end());
    for (auto& x : v) x += 0.05f * static_cast<float>(rng.NextGaussian());
    auto id = engine.Insert(v);
    if (id.ok()) {
      ++inserted;
      // Keep the recall denominator honest: the inserted vector is now part
      // of the corpus, so ground truth must include it.
      ds.base.Append(v);
    } else if (id.status().code() != dhnsw::StatusCode::kCapacity) {
      std::fprintf(stderr, "insert failed: %s\n", id.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("\ninserted %u vectors into overflow areas; recomputing ground truth\n\n",
              inserted);
  dhnsw::ComputeGroundTruth(&ds, config.gt_k);
  measure("with overflow");

  auto stats = engine.Compact();
  if (!stats.ok()) {
    std::fprintf(stderr, "compact failed: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("\ncompaction: %u clusters, folded %u records, applied %u tombstones,\n"
              "            read %s one-sided, region %s -> %s\n\n",
              stats.value().clusters, stats.value().live_records_folded,
              stats.value().tombstones_applied,
              FormatBytes(stats.value().bytes_read).c_str(),
              FormatBytes(stats.value().old_region_bytes).c_str(),
              FormatBytes(stats.value().new_region_bytes).c_str());
  measure("after compaction");
  std::printf("\n# overflow rides along every cluster read until compaction folds it in.\n");
  return 0;
}
