// Shared harness for the paper-reproduction benches (Fig. 6, Tables 1-2, and
// the ablations). Each bench binary is a thin main() over these helpers so
// that dataset shaping, engine configuration, and table formatting stay
// consistent across experiments.
//
// Scale note: the paper runs SIFT1M/GIST1M on four 2x36-core servers; these
// benches default to a laptop-scale stand-in (tens of thousands of vectors)
// with the same dimensionality and clustered structure. Flags let you raise
// the scale or point at real .fvecs files.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/compute_node.h"
#include "core/engine.h"
#include "dataset/dataset.h"

namespace dhnsw::bench {

/// Which paper dataset a bench imitates.
enum class Workload { kSiftLike, kGistLike };

struct BenchConfig {
  Workload workload = Workload::kSiftLike;
  uint32_t num_base = 20000;
  uint32_t num_queries = 2000;   ///< == the paper's batch size of 2000
  uint32_t num_representatives = 50;
  uint32_t clusters_per_query = 4;   ///< b
  double cache_fraction = 0.10;      ///< paper: cache holds 10% of clusters
  uint32_t doorbell_batch = 16;
  uint32_t sub_m = 8;
  uint32_t ef_construction = 40;
  uint32_t gt_k = 10;
  uint64_t seed = 20250706;
  /// Optional real dataset files (.fvecs); override the synthetic generator.
  std::string base_path;
  std::string query_path;

  static BenchConfig ForWorkload(Workload w);
};

/// Parses "--key=value" style args into the config (unknown keys are fatal).
BenchConfig ParseFlags(int argc, char** argv, BenchConfig defaults);

/// Builds the dataset (synthetic by default, .fvecs when paths are given)
/// with exact ground truth at config.gt_k.
Dataset LoadDataset(const BenchConfig& config);

/// Builds the full d-HNSW system for the dataset.
DhnswEngine BuildEngine(const Dataset& ds, const BenchConfig& config);

/// Fresh compute node in the given mode, attached to the engine's fabric.
std::unique_ptr<ComputeNode> AttachComputeNode(DhnswEngine& engine,
                                               const BenchConfig& config,
                                               EngineMode mode);

/// One row of a latency-recall sweep.
struct SweepPoint {
  uint32_t ef_search;
  double recall;
  double latency_us_per_query;  ///< network + meta + sub + deserialize
  BatchBreakdown breakdown;
};

/// Runs one (mode, efSearch) measurement over the full query set as a single
/// batch (the paper's batch size) and computes recall@k.
SweepPoint RunPoint(ComputeNode& node, const Dataset& ds, size_t k, uint32_t ef);

/// Pretty-prints a latency-recall table for one scheme.
void PrintSweep(const std::string& scheme, const std::vector<SweepPoint>& points);

/// Standard efSearch sweep used by all Fig. 6 reproductions.
std::vector<uint32_t> DefaultEfSweep();

/// Human-readable bytes.
std::string FormatBytes(uint64_t bytes);

/// Minimal JSON emitter for machine-readable bench output (CI archives one
/// file per commit). Each row is a flat object of string labels and numeric
/// fields; Dump() renders `{"benchmarks": [...]}`.
class JsonWriter {
 public:
  /// Starts a new row named `name` (becomes the row's "name" label).
  JsonWriter& Row(const std::string& name);
  JsonWriter& Label(const std::string& key, const std::string& value);
  JsonWriter& Field(const std::string& key, double value);

  std::string Dump() const;
  /// Writes Dump() to `path`; returns false (with a perror) on failure.
  bool WriteFile(const std::string& path) const;

 private:
  struct RowData {
    std::vector<std::pair<std::string, std::string>> labels;
    std::vector<std::pair<std::string, double>> fields;
  };
  std::vector<RowData> rows_;
};

/// Stamps the engine's NIC cost-model provenance onto a bench JSON row:
/// `nic_source` ("connectx6-datasheet" by default, "calibrated-<backend>"
/// after `dhnsw_cli calibrate`) and the `transport` backend that produced
/// the numbers. Archived artifacts then record which cost model they were
/// measured under. Returns the row for further chaining.
JsonWriter& LabelNic(JsonWriter& row, DhnswEngine& engine);

/// Runs a whole Fig.6-style experiment: 3 schemes x ef sweep; prints tables
/// and the headline speedup (naive vs d-HNSW at the largest ef).
void RunLatencyRecallFigure(const std::string& title, const BenchConfig& config, size_t k);

/// Runs a Table 1/2-style breakdown at efSearch=48, top-1, for all schemes.
void RunBreakdownTable(const std::string& title, const BenchConfig& config);

}  // namespace dhnsw::bench
