// §2.1 motivation: "Traditional methods like KD-trees [24] and LSH [7]
// struggle with scalability and search accuracy in high-dimensional spaces,
// leading to the development of graph-based indexing techniques."
//
// This bench puts numbers behind that sentence on a 128-d SIFT-like
// instance: recall@10 vs per-query search time for Flat (exact), KD-tree
// (bounded backtracking), LSH (multi-table SRP), and HNSW.
#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "dataset/ground_truth.h"
#include "index/flat_index.h"
#include "index/hnsw.h"
#include "index/kdtree.h"
#include "index/lsh.h"

namespace {

double Recall(const dhnsw::Dataset& ds, size_t qi, const std::vector<dhnsw::Scored>& got) {
  return dhnsw::RecallAtK(got, ds.GroundTruthFor(qi), 10);
}

template <typename SearchFn>
void Measure(const char* name, const dhnsw::Dataset& ds, SearchFn&& search) {
  dhnsw::WallTimer timer;
  double recall = 0.0;
  for (size_t qi = 0; qi < ds.queries.size(); ++qi) {
    recall += Recall(ds, qi, search(ds.queries[qi]));
  }
  const double us_per_query = timer.elapsed_us() / static_cast<double>(ds.queries.size());
  std::printf("%-28s recall@10 = %.4f   %10.1f us/query\n", name,
              recall / static_cast<double>(ds.queries.size()), us_per_query);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dhnsw::bench;
  BenchConfig config =
      ParseFlags(argc, argv, BenchConfig::ForWorkload(Workload::kSiftLike));
  config.num_base = 20000;
  config.num_queries = 200;

  std::printf("==== Index baselines (paper §2.1 motivation) ====\n");
  dhnsw::Dataset ds = LoadDataset(config);

  // Build all four indexes.
  dhnsw::FlatIndex flat(ds.base.dim());
  flat.AddBatch(ds.base.flat());

  dhnsw::KdTreeIndex kdtree(ds.base.dim(), {.leaf_size = 32});
  kdtree.Build(ds.base.flat());

  dhnsw::LshIndex lsh(ds.base.dim(),
                      {.num_tables = 8, .num_bits = 14, .multiprobe = 1});
  lsh.Build(ds.base.flat());

  dhnsw::WallTimer hnsw_build;
  dhnsw::HnswIndex hnsw(ds.base.dim(), {.M = 16, .ef_construction = 100});
  for (size_t i = 0; i < ds.base.size(); ++i) hnsw.Add(ds.base[i]);
  std::printf("# hnsw build: %.1f ms; kdtree leaves: %zu\n\n",
              hnsw_build.elapsed_ms(), kdtree.num_leaves());

  Measure("flat (exact)", ds, [&](auto q) { return flat.Search(q, 10); });
  for (size_t leaves : {8u, 64u, 256u}) {
    char name[64];
    std::snprintf(name, sizeof name, "kd-tree (%zu leaves)", leaves);
    Measure(name, ds, [&](auto q) { return kdtree.Search(q, 10, leaves); });
  }
  Measure("lsh (8 tables, multiprobe)", ds,
          [&](auto q) { return lsh.Search(q, 10); });
  for (uint32_t ef : {16u, 48u, 128u}) {
    char name[64];
    std::snprintf(name, sizeof name, "hnsw (ef=%u)", ef);
    Measure(name, ds, [&](auto q) { return hnsw.Search(q, 10, ef); });
  }
  std::printf("\n# expected shape: HNSW dominates the recall/latency frontier at 128-d,\n"
              "# which is why d-HNSW builds on it (paper §2.1).\n");
  return 0;
}
