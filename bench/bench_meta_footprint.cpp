// Reproduces the paper's §3.1 footprint claim: the meta-HNSW over 500
// uniformly sampled vectors "only costs 0.373 MB for SIFT1M and 1.960 MB for
// GIST1M". We build the identical structure (500 representatives, 3 layers)
// over same-dimensional data and report the serialized size.
#include <cstdio>

#include "bench_common.h"
#include "core/meta_hnsw.h"
#include "dataset/synthetic.h"

namespace {

void Measure(const char* name, const dhnsw::Dataset& ds, double paper_mb) {
  dhnsw::MetaHnswOptions options;
  options.num_representatives = 500;
  auto meta = dhnsw::MetaHnsw::Build(ds.base, options);
  if (!meta.ok()) {
    std::fprintf(stderr, "meta build failed: %s\n", meta.status().ToString().c_str());
    std::exit(1);
  }
  const size_t bytes = meta.value().ToBlob().size();
  std::printf("%-10s dim=%4u  reps=500  meta-HNSW blob = %8.3f MB   (paper: %.3f MB)\n",
              name, ds.base.dim(), static_cast<double>(bytes) / (1 << 20), paper_mb);
}

}  // namespace

int main() {
  std::printf("==== meta-HNSW footprint (paper §3.1) ====\n");
  // Only the representative count and dimensionality matter for the blob
  // size, so modest base sizes suffice to sample 500 reps from.
  Measure("SIFT-like", dhnsw::MakeSiftLike(20000, 1), 0.373);
  Measure("GIST-like", dhnsw::MakeGistLike(5000, 1), 1.960);
  return 0;
}
