#include "bench_common.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"
#include "dataset/vecs_io.h"

namespace dhnsw::bench {

BenchConfig BenchConfig::ForWorkload(Workload w) {
  BenchConfig config;
  config.workload = w;
  if (w == Workload::kGistLike) {
    // 960-d vectors are 7.5x larger; keep wall time comparable by shrinking
    // counts, mirroring how the paper's GIST run stresses bandwidth.
    config.num_base = 6000;
    config.num_queries = 500;
    config.num_representatives = 40;
  }
  return config;
}

BenchConfig ParseFlags(int argc, char** argv, BenchConfig defaults) {
  BenchConfig config = defaults;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "unknown argument: %s (expect --key=value)\n", arg.c_str());
      std::exit(2);
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    auto as_u32 = [&] { return static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10)); };
    if (key == "dataset") {
      if (value == "sift") {
        config = BenchConfig::ForWorkload(Workload::kSiftLike);
      } else if (value == "gist") {
        config = BenchConfig::ForWorkload(Workload::kGistLike);
      } else {
        std::fprintf(stderr, "unknown dataset %s (sift|gist)\n", value.c_str());
        std::exit(2);
      }
    } else if (key == "base") {
      config.num_base = as_u32();
    } else if (key == "queries") {
      config.num_queries = as_u32();
    } else if (key == "reps") {
      config.num_representatives = as_u32();
    } else if (key == "b") {
      config.clusters_per_query = as_u32();
    } else if (key == "cache_fraction") {
      config.cache_fraction = std::strtod(value.c_str(), nullptr);
    } else if (key == "doorbell") {
      config.doorbell_batch = as_u32();
    } else if (key == "seed") {
      config.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "base_path") {
      config.base_path = value;
    } else if (key == "query_path") {
      config.query_path = value;
    } else {
      std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
      std::exit(2);
    }
  }
  return config;
}

Dataset LoadDataset(const BenchConfig& config) {
  Dataset ds;
  if (!config.base_path.empty()) {
    auto base = ReadFvecs(config.base_path, config.num_base);
    auto queries = ReadFvecs(config.query_path, config.num_queries);
    if (!base.ok() || !queries.ok()) {
      std::fprintf(stderr, "failed to load fvecs: %s / %s\n",
                   base.status().ToString().c_str(), queries.status().ToString().c_str());
      std::exit(1);
    }
    ds.name = config.base_path;
    ds.base = std::move(base).value();
    ds.queries = std::move(queries).value();
  } else if (config.workload == Workload::kSiftLike) {
    ds = MakeSiftLike(config.num_base, config.num_queries, config.seed);
  } else {
    ds = MakeGistLike(config.num_base, config.num_queries, config.seed);
  }
  std::printf("# dataset: %s  base=%zu  queries=%zu  dim=%u\n", ds.name.c_str(),
              ds.base.size(), ds.queries.size(), ds.base.dim());
  std::printf("# computing exact ground truth (k=%u)...\n", config.gt_k);
  ComputeGroundTruth(&ds, config.gt_k);
  return ds;
}

DhnswEngine BuildEngine(const Dataset& ds, const BenchConfig& config) {
  DhnswConfig dcfg = DhnswConfig::Defaults();
  dcfg.meta.num_representatives = config.num_representatives;
  dcfg.sub_hnsw.M = config.sub_m;
  dcfg.sub_hnsw.ef_construction = config.ef_construction;
  dcfg.compute.clusters_per_query = config.clusters_per_query;
  dcfg.compute.cache_capacity = static_cast<uint32_t>(
      std::max(1.0, config.cache_fraction * config.num_representatives));
  dcfg.compute.doorbell_batch = config.doorbell_batch;
  // Size the shared overflow like the paper (0.75 MB for SIFT1M pairs),
  // scaled to our record size: room for ~1000 inserted vectors per group.
  dcfg.layout.overflow_bytes_per_group = 1000ull * (8 + ds.base.dim() * 4ull);

  auto engine = DhnswEngine::Build(ds.base, dcfg);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n", engine.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("# engine: %u partitions, meta-HNSW blob %s, region %s\n",
              engine.value().num_partitions(),
              FormatBytes(engine.value().meta_blob_bytes()).c_str(),
              FormatBytes(engine.value().memory_node()->plan().total_size).c_str());
  return std::move(engine).value();
}

std::unique_ptr<ComputeNode> AttachComputeNode(DhnswEngine& engine,
                                               const BenchConfig& config,
                                               EngineMode mode) {
  ComputeOptions options;
  options.mode = mode;
  options.clusters_per_query = config.clusters_per_query;
  options.cache_capacity = static_cast<uint32_t>(
      std::max(1.0, config.cache_fraction * config.num_representatives));
  options.doorbell_batch = config.doorbell_batch;
  auto node = std::make_unique<ComputeNode>(&engine.fabric(), engine.memory_handle(),
                                            options);
  const Status st = node->Connect();
  if (!st.ok()) {
    std::fprintf(stderr, "compute connect failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return node;
}

SweepPoint RunPoint(ComputeNode& node, const Dataset& ds, size_t k, uint32_t ef) {
  auto result = node.SearchAll(ds.queries, k, ef);
  if (!result.ok()) {
    std::fprintf(stderr, "search failed: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  SweepPoint point;
  point.ef_search = ef;
  point.recall = MeanRecallAtK(ds, result.value().results, k);
  const BatchBreakdown& b = result.value().breakdown;
  point.breakdown = b;
  point.latency_us_per_query =
      (b.network_us + b.meta_us + b.sub_us + b.deserialize_us) /
      static_cast<double>(b.num_queries);
  return point;
}

std::vector<uint32_t> DefaultEfSweep() { return {1, 2, 4, 8, 16, 24, 32, 48}; }

void PrintSweep(const std::string& scheme, const std::vector<SweepPoint>& points) {
  std::printf("\n## scheme: %s\n", scheme.c_str());
  std::printf("%8s %10s %14s %12s %10s %10s %10s\n", "efSearch", "recall",
              "latency(us/q)", "net(us/q)", "meta(us/q)", "sub(us/q)", "RT/q");
  for (const SweepPoint& p : points) {
    std::printf("%8u %10.4f %14.2f %12.2f %10.3f %10.3f %10.4f\n", p.ef_search,
                p.recall, p.latency_us_per_query, p.breakdown.per_query_network_us(),
                p.breakdown.per_query_meta_us(), p.breakdown.per_query_sub_us(),
                p.breakdown.per_query_round_trips());
  }
}

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof buf, "%.3f MB", static_cast<double>(bytes) / (1 << 20));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof buf, "%.1f KB", static_cast<double>(bytes) / 1024);
  } else {
    std::snprintf(buf, sizeof buf, "%" PRIu64 " B", bytes);
  }
  return buf;
}

void RunLatencyRecallFigure(const std::string& title, const BenchConfig& config, size_t k) {
  std::printf("==== %s ====\n", title.c_str());
  Dataset ds = LoadDataset(config);
  DhnswEngine engine = BuildEngine(ds, config);

  const std::vector<uint32_t> sweep = DefaultEfSweep();
  struct Scheme {
    EngineMode mode;
    const char* name;
  };
  const Scheme schemes[] = {{EngineMode::kNaive, "naive d-HNSW"},
                            {EngineMode::kNoDoorbell, "d-HNSW (w/o doorbell)"},
                            {EngineMode::kFull, "d-HNSW"}};

  SweepPoint naive_at_max{}, full_at_max{};
  for (const Scheme& scheme : schemes) {
    std::vector<SweepPoint> points;
    for (uint32_t ef : sweep) {
      // Fresh node per point: every measurement starts with a cold cache,
      // like the paper's independent runs.
      auto node = AttachComputeNode(engine, config, scheme.mode);
      points.push_back(RunPoint(*node, ds, k, ef));
    }
    PrintSweep(scheme.name, points);
    if (scheme.mode == EngineMode::kNaive) naive_at_max = points.back();
    if (scheme.mode == EngineMode::kFull) full_at_max = points.back();
  }
  std::printf("\n# headline at efSearch=%u: naive/d-HNSW latency %.1fx, "
              "network-only %.1fx (paper: up to 117x on SIFT1M, 121x on GIST1M)\n",
              sweep.back(),
              naive_at_max.latency_us_per_query / full_at_max.latency_us_per_query,
              naive_at_max.breakdown.network_us / full_at_max.breakdown.network_us);
}

void RunBreakdownTable(const std::string& title, const BenchConfig& config) {
  std::printf("==== %s ====\n", title.c_str());
  BenchConfig cfg = config;
  cfg.gt_k = 1;
  Dataset ds = LoadDataset(cfg);
  DhnswEngine engine = BuildEngine(ds, cfg);

  struct Row {
    const char* name;
    EngineMode mode;
  };
  const Row rows[] = {{"Naive d-HNSW", EngineMode::kNaive},
                      {"d-HNSW (w./o. doorbell)", EngineMode::kNoDoorbell},
                      {"d-HNSW", EngineMode::kFull}};

  // The paper's Table 1/2 columns are batch-level service times: a query in
  // a batch completes when its batch does, so the "network latency" of a
  // vector query is the whole batch's network time (90.2 ms for naive on
  // SIFT1M). We report the same batch-level quantities; sub-HNSW includes
  // per-load deserialization, which naive repeats for every duplicate load.
  std::vector<SweepPoint> points;
  for (const Row& row : rows) {
    auto node = AttachComputeNode(engine, cfg, row.mode);
    points.push_back(RunPoint(*node, ds, /*k=*/1, /*ef=*/48));
  }

  std::printf("\n-- batch-level totals --\n");
  std::printf("%-26s %14s %14s %14s %12s\n", "Scheme", "Network(us)",
              "Sub-HNSW(us)", "Meta-HNSW(us)", "RT/query");
  for (size_t i = 0; i < std::size(rows); ++i) {
    const SweepPoint& p = points[i];
    std::printf("%-26s %14.1f %14.1f %14.1f %12.5f\n", rows[i].name,
                p.breakdown.network_us,
                p.breakdown.sub_us + p.breakdown.deserialize_us,
                p.breakdown.meta_us, p.breakdown.per_query_round_trips());
  }

  std::printf("\n-- per-query averages --\n");
  std::printf("%-26s %14s %14s %14s\n", "Scheme", "Network(us/q)",
              "Sub-HNSW(us/q)", "Meta-HNSW(us/q)");
  for (size_t i = 0; i < std::size(rows); ++i) {
    const SweepPoint& p = points[i];
    const double nq = static_cast<double>(p.breakdown.num_queries);
    std::printf("%-26s %14.3f %14.3f %14.4f\n", rows[i].name,
                p.breakdown.network_us / nq,
                (p.breakdown.sub_us + p.breakdown.deserialize_us) / nq,
                p.breakdown.meta_us / nq);
  }
  std::printf("\n# paper reference (%s@1, efSearch=48): see EXPERIMENTS.md\n",
              cfg.workload == Workload::kSiftLike ? "SIFT1M" : "GIST1M");
}

JsonWriter& LabelNic(JsonWriter& row, DhnswEngine& engine) {
  return row.Label("nic_source", engine.fabric().nic_config().source)
      .Label("transport", std::string(engine.fabric().transport().name()));
}

JsonWriter& JsonWriter::Row(const std::string& name) {
  rows_.emplace_back();
  rows_.back().labels.emplace_back("name", name);
  return *this;
}

JsonWriter& JsonWriter::Label(const std::string& key, const std::string& value) {
  rows_.back().labels.emplace_back(key, value);
  return *this;
}

JsonWriter& JsonWriter::Field(const std::string& key, double value) {
  rows_.back().fields.emplace_back(key, value);
  return *this;
}

std::string JsonWriter::Dump() const {
  // Labels here are identifiers (kernel names, metric names); no escaping of
  // exotic characters is attempted.
  std::string out = "{\n  \"benchmarks\": [\n";
  for (size_t r = 0; r < rows_.size(); ++r) {
    out += "    {";
    bool first = true;
    for (const auto& [k, v] : rows_[r].labels) {
      if (!first) out += ", ";
      first = false;
      out += "\"" + k + "\": \"" + v + "\"";
    }
    for (const auto& [k, v] : rows_[r].fields) {
      if (!first) out += ", ";
      first = false;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", v);
      out += "\"" + k + "\": " + buf;
    }
    out += r + 1 < rows_.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool JsonWriter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::perror(("JsonWriter: " + path).c_str());
    return false;
  }
  const std::string body = Dump();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

}  // namespace dhnsw::bench
