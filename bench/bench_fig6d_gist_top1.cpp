// Reproduces paper Fig. 6(d): latency-recall on GIST-like (960-d), top-1.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dhnsw::bench;
  BenchConfig config =
      ParseFlags(argc, argv, BenchConfig::ForWorkload(Workload::kGistLike));
  config.gt_k = 1;
  RunLatencyRecallFigure("Fig. 6(d): GIST-like, top-1", config, /*k=*/1);
  return 0;
}
