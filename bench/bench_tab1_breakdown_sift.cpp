// Reproduces paper Table 1: per-query latency breakdown (network / sub-HNSW /
// meta-HNSW) for SIFT-like top-1 at efSearch=48, plus the round-trips-per-
// query counts quoted in §4 (3.547 naive, 0.896 w/o doorbell, 4.75e-3 full).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dhnsw::bench;
  const BenchConfig config =
      ParseFlags(argc, argv, BenchConfig::ForWorkload(Workload::kSiftLike));
  RunBreakdownTable("Table 1: latency breakdown, SIFT-like @1, efSearch=48", config);
  return 0;
}
