// Ablation A9: what the sub-HNSW *graphs* buy inside partitions. "d-IVF"
// (flat per-cluster scans, exact within routed partitions) vs d-HNSW graph
// search, across partition sizes. Network traffic is identical — this
// isolates the compute-side contribution of the paper's graph index.
#include <cstdio>

#include "bench_common.h"
#include "dataset/ground_truth.h"

int main(int argc, char** argv) {
  using namespace dhnsw::bench;
  BenchConfig config =
      ParseFlags(argc, argv, BenchConfig::ForWorkload(Workload::kSiftLike));
  config.num_base = 20000;
  config.num_queries = 500;

  std::printf("==== Ablation: graph vs flat-scan sub-search (d-IVF) ====\n");
  dhnsw::Dataset ds = LoadDataset(config);

  std::printf("\n%8s %12s | %10s %14s | %10s %14s\n", "reps", "vec/part",
              "graph r@10", "graph sub(us/q)", "flat r@10", "flat sub(us/q)");
  for (uint32_t reps : {100u, 25u, 5u}) {
    BenchConfig point = config;
    point.num_representatives = reps;
    dhnsw::DhnswEngine engine = BuildEngine(ds, point);

    double metrics[2][2];  // [graph|flat][recall|sub_us]
    for (int mode = 0; mode < 2; ++mode) {
      dhnsw::ComputeOptions options;
      options.clusters_per_query = point.clusters_per_query;
      options.cache_capacity = reps;  // cache everything: isolate compute
      options.sub_search = mode == 0 ? dhnsw::SubSearchMode::kGraph
                                     : dhnsw::SubSearchMode::kFlatScan;
      dhnsw::ComputeNode node(&engine.fabric(), engine.memory_handle(), options);
      if (!node.Connect().ok()) return 1;
      const SweepPoint p = RunPoint(node, ds, 10, 32);
      metrics[mode][0] = p.recall;
      metrics[mode][1] =
          p.breakdown.sub_us / static_cast<double>(p.breakdown.num_queries);
    }
    std::printf("%8u %12u | %10.4f %14.2f | %10.4f %14.2f\n", reps,
                config.num_base / reps, metrics[0][0], metrics[0][1],
                metrics[1][0], metrics[1][1]);
  }
  std::printf("\n# as partitions grow, graph search pulls ahead of exact scans —\n"
              "# the reason d-HNSW uses sub-HNSWs instead of IVF lists.\n");
  return 0;
}
