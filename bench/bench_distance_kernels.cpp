// Microbenchmark for the SIMD distance-kernel subsystem (index/distance.h):
// pairwise scalar vs the dispatched tier, plus the batched gather/rows
// kernels, across all metrics at the paper's dims (SIFT=128, GIST=960).
//
// The acceptance question it answers: does the batched one-to-many kernel
// beat a scalar pairwise loop at dim >= 32? Output is a table on stdout and,
// with --json=PATH, a machine-readable file (archived per commit by CI).
//
//   ./bench_distance_kernels [--reps=200] [--json=kernels.json]
//
// Set DHNSW_FORCE_SCALAR=1 to measure the scalar tier as "active".
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "index/distance.h"

namespace {

using namespace dhnsw;

constexpr size_t kBatch = 64;    // neighbor-list-sized one-to-many batch
constexpr size_t kRows = 10000;  // base rows the gather indexes into

struct Workbench {
  size_t dim;
  std::vector<float> query;
  std::vector<float> base;        // kRows x dim
  std::vector<uint32_t> ids;      // kBatch random row ids (gather)
  std::vector<float> out;

  explicit Workbench(size_t d) : dim(d), query(d), base(kRows * d), ids(kBatch), out(kBatch) {
    Xoshiro256 rng(0xbe7cu + d);
    for (float& v : query) v = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
    for (float& v : base) v = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
    for (uint32_t& id : ids) id = static_cast<uint32_t>(rng.NextBounded(kRows));
  }
};

/// Times `fn` (which must consume `per_call` vectors per invocation) and
/// returns ns per vector pair scored.
template <typename Fn>
double TimePerVector(size_t reps, size_t per_call, Fn&& fn) {
  fn();  // warm caches and the dispatch path
  WallTimer timer;
  for (size_t r = 0; r < reps; ++r) fn();
  return static_cast<double>(timer.elapsed_ns()) /
         static_cast<double>(reps * per_call);
}

volatile float g_sink;  // defeat dead-code elimination

void RunDim(size_t dim, size_t reps, bench::JsonWriter& json) {
  Workbench wb(dim);
  const KernelTable& scalar = KernelsForTier(SimdTier::kScalar);
  const KernelTable& active = ActiveKernels();

  std::printf("\n-- dim %zu (active tier: %s, batch %zu) --\n", dim,
              std::string(SimdTierName(active.tier)).c_str(), kBatch);
  std::printf("%-10s %-22s %12s %10s\n", "metric", "kernel", "ns/vector", "GB/s");

  for (Metric metric : {Metric::kL2, Metric::kInnerProduct, Metric::kCosine}) {
    const PairKernel scalar_pair = scalar.Pair(metric);
    const PairKernel active_pair = active.Pair(metric);
    const GatherKernel gather = active.Gather(metric);
    const RowsKernel rows = active.Rows(metric);

    struct Variant {
      const char* name;
      double ns_per_vector;
    };
    Variant variants[] = {
        // Scalar pairwise loop over the batch: the reference the batched
        // kernels must beat.
        {"pair_scalar_loop", TimePerVector(reps, kBatch, [&] {
           float acc = 0.0f;
           for (uint32_t id : wb.ids) {
             acc += scalar_pair(wb.query.data(), wb.base.data() + id * dim, dim);
           }
           g_sink = acc;
         })},
        {"pair_active_loop", TimePerVector(reps, kBatch, [&] {
           float acc = 0.0f;
           for (uint32_t id : wb.ids) {
             acc += active_pair(wb.query.data(), wb.base.data() + id * dim, dim);
           }
           g_sink = acc;
         })},
        {"gather_batched", TimePerVector(reps, kBatch, [&] {
           gather(wb.query.data(), wb.base.data(), dim, wb.ids.data(), kBatch,
                  wb.out.data());
           g_sink = wb.out[0];
         })},
        {"rows_contiguous", TimePerVector(reps, kBatch, [&] {
           rows(wb.query.data(), wb.base.data(), dim, kBatch, wb.out.data());
           g_sink = wb.out[0];
         })},
    };

    const std::string metric_name(MetricName(metric));
    for (const Variant& v : variants) {
      // Two float rows are streamed per scored pair.
      const double gbps = 2.0 * static_cast<double>(dim) * sizeof(float) /
                          v.ns_per_vector;
      std::printf("%-10s %-22s %12.2f %10.2f\n", metric_name.c_str(), v.name,
                  v.ns_per_vector, gbps);
      json.Row(std::string(v.name) + "/" + metric_name + "/" +
               std::to_string(dim))
          .Label("metric", metric_name)
          .Label("kernel", v.name)
          .Label("tier", std::string(std::strstr(v.name, "scalar") != nullptr
                                         ? SimdTierName(SimdTier::kScalar)
                                         : SimdTierName(active.tier)))
          .Field("dim", static_cast<double>(dim))
          .Field("batch", static_cast<double>(kBatch))
          .Field("ns_per_vector", v.ns_per_vector)
          .Field("gb_per_s", gbps);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  size_t reps = 2000;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = static_cast<size_t>(std::atol(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }

  std::printf("active tier: %s; available:",
              std::string(SimdTierName(ActiveTier())).c_str());
  for (SimdTier t : AvailableTiers()) {
    std::printf(" %s", std::string(SimdTierName(t)).c_str());
  }
  std::printf("\n");

  dhnsw::bench::JsonWriter json;
  for (size_t dim : {size_t{128}, size_t{960}}) RunDim(dim, reps, json);

  if (!json_path.empty()) {
    if (!json.WriteFile(json_path)) return 1;
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}
