// Ablation A2: compute-side cluster cache size (paper fixes it at 10% of the
// clusters; §3.3 "we retain the most recently loaded c sub-HNSWs for the
// next batch"). Sweeps the cache fraction and measures the second batch
// (warm) against the first (cold): hit rate and network time per query.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dhnsw::bench;
  BenchConfig config =
      ParseFlags(argc, argv, BenchConfig::ForWorkload(Workload::kSiftLike));

  std::printf("==== Ablation: cluster cache capacity (paper §3.3) ====\n");
  dhnsw::Dataset ds = LoadDataset(config);
  dhnsw::DhnswEngine engine = BuildEngine(ds, config);

  std::printf("\n%8s %10s %16s %16s %12s\n", "cache%", "clusters", "cold net(us/q)",
              "warm net(us/q)", "warm hits");
  for (double fraction : {0.0, 0.05, 0.10, 0.25, 0.50, 1.00}) {
    BenchConfig point = config;
    point.cache_fraction = fraction;
    auto node = AttachComputeNode(engine, point, dhnsw::EngineMode::kFull);
    const SweepPoint cold = RunPoint(*node, ds, /*k=*/10, /*ef=*/32);
    const SweepPoint warm = RunPoint(*node, ds, /*k=*/10, /*ef=*/32);
    std::printf("%7.0f%% %10u %16.3f %16.3f %12lu\n", fraction * 100,
                std::max(1u, static_cast<uint32_t>(fraction * config.num_representatives)),
                cold.breakdown.per_query_network_us(),
                warm.breakdown.per_query_network_us(),
                static_cast<unsigned long>(warm.breakdown.cache_hits));
  }
  std::printf("\n# cold batches pay the full load; warm batches shrink with capacity.\n");
  return 0;
}
