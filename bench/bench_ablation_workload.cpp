// Ablation A7: query-stream shape vs the cross-batch cluster cache (§3.3).
// The paper's queries are uniform; production streams are skewed/drifting.
// This sweeps workload shapes and reports loads, cache hits, and network
// time per query over a sequence of batches with a fixed 10% cache.
#include <cstdio>

#include "bench_common.h"
#include "dataset/workload.h"

int main(int argc, char** argv) {
  using namespace dhnsw::bench;
  BenchConfig config =
      ParseFlags(argc, argv, BenchConfig::ForWorkload(Workload::kSiftLike));
  config.num_base = 20000;
  config.num_queries = 16;  // GT unused here; keep dataset build fast
  config.gt_k = 1;

  std::printf("==== Ablation: workload shape vs cluster cache ====\n");
  dhnsw::Dataset ds = LoadDataset(config);
  dhnsw::DhnswEngine engine = BuildEngine(ds, config);

  // Topics == d-HNSW partitions (router-derived), so popularity skew maps
  // directly onto cluster demand — the quantity the cache sees.
  std::vector<uint32_t> row_topics(ds.base.size());
  {
    const dhnsw::MetaHnsw& meta = engine.compute(0).meta();
    for (size_t i = 0; i < ds.base.size(); ++i) {
      row_topics[i] = meta.RouteOne(ds.base[i]);
    }
  }
  auto with_topics = [&](dhnsw::WorkloadSpec spec) {
    spec.row_topics = row_topics;
    return spec;
  };

  struct Shape {
    const char* name;
    dhnsw::WorkloadSpec spec;
  };
  const Shape shapes[] = {
      {"uniform", with_topics({.shape = dhnsw::WorkloadShape::kUniform, .seed = 9})},
      {"zipf(s=1.1)",
       with_topics({.shape = dhnsw::WorkloadShape::kZipfian, .zipf_s = 1.1, .seed = 9})},
      {"zipf(s=1.5)",
       with_topics({.shape = dhnsw::WorkloadShape::kZipfian, .zipf_s = 1.5, .seed = 9})},
      {"drifting(4 hot)",
       with_topics({.shape = dhnsw::WorkloadShape::kDrifting, .hot_topics = 4, .seed = 9})},
  };

  constexpr size_t kBatch = 100;
  constexpr int kBatches = 10;
  std::printf("\n%-16s %12s %12s %14s %12s\n", "workload", "loads/query",
              "hits/batch", "net(us/q)", "RT/query");
  for (const Shape& shape : shapes) {
    auto node = AttachComputeNode(engine, config, dhnsw::EngineMode::kFull);
    dhnsw::QueryStream stream(ds.base, shape.spec);
    dhnsw::BatchBreakdown total;
    for (int b = 0; b < kBatches; ++b) {
      const dhnsw::VectorSet batch = stream.NextBatch(kBatch);
      auto result = node->SearchAll(batch, 10, 32);
      if (!result.ok()) {
        std::fprintf(stderr, "search failed: %s\n", result.status().ToString().c_str());
        return 1;
      }
      total += result.value().breakdown;
    }
    const double nq = static_cast<double>(kBatch) * kBatches;
    std::printf("%-16s %12.4f %12.1f %14.3f %12.4f\n", shape.name,
                static_cast<double>(total.clusters_loaded) / nq,
                static_cast<double>(total.cache_hits) / kBatches,
                total.network_us / nq,
                static_cast<double>(total.round_trips) / nq);
  }
  std::printf("\n# skew/drift shape how much the 10%% cache saves across batches.\n");
  return 0;
}
