// Reproduces paper Fig. 6(b): latency-recall on SIFT-like, top-1.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dhnsw::bench;
  BenchConfig config =
      ParseFlags(argc, argv, BenchConfig::ForWorkload(Workload::kSiftLike));
  config.gt_k = 1;
  RunLatencyRecallFigure("Fig. 6(b): SIFT-like, top-1", config, /*k=*/1);
  return 0;
}
