// Ablation A3: query batch size (the paper fixes s=2000). Query-aware
// loading dedups b*s cluster demands into unique loads, so the per-query
// network cost should fall sharply as the batch grows.
#include <cstdio>

#include "bench_common.h"
#include "dataset/ground_truth.h"

int main(int argc, char** argv) {
  using namespace dhnsw::bench;
  BenchConfig config =
      ParseFlags(argc, argv, BenchConfig::ForWorkload(Workload::kSiftLike));

  std::printf("==== Ablation: query batch size (paper §3.3, s=2000) ====\n");
  dhnsw::Dataset ds = LoadDataset(config);
  dhnsw::DhnswEngine engine = BuildEngine(ds, config);

  std::printf("\n%10s %14s %14s %12s %10s\n", "batch", "net(us/q)", "loads/query",
              "RT/query", "recall");
  for (size_t batch : {size_t{1}, size_t{10}, size_t{100}, size_t{500},
                       ds.queries.size()}) {
    auto node = AttachComputeNode(engine, config, dhnsw::EngineMode::kFull);
    dhnsw::BatchBreakdown total;
    double recall_sum = 0.0;
    size_t batches = 0;
    for (size_t begin = 0; begin < ds.queries.size(); begin += batch) {
      const size_t count = std::min(batch, ds.queries.size() - begin);
      auto result = node->SearchBatch(ds.queries, begin, count, 10, 32);
      if (!result.ok()) {
        std::fprintf(stderr, "search failed: %s\n", result.status().ToString().c_str());
        return 1;
      }
      total += result.value().breakdown;
      // recall over this slice
      double r = 0;
      for (size_t i = 0; i < count; ++i) {
        r += dhnsw::RecallAtK(result.value().results[i],
                              ds.GroundTruthFor(begin + i), 10);
      }
      recall_sum += r;
      ++batches;
    }
    const double nq = static_cast<double>(ds.queries.size());
    std::printf("%10zu %14.3f %14.4f %12.4f %10.4f\n", batch,
                total.network_us / nq,
                static_cast<double>(total.clusters_loaded) / nq,
                static_cast<double>(total.round_trips) / nq, recall_sum / nq);
  }
  std::printf("\n# larger batches amortize cluster loads across more queries.\n");
  return 0;
}
