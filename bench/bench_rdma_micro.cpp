// Microbenchmarks for the simulated RDMA fabric (micro M2): verifies the
// cost model's behaviour (READ scaling with size, doorbell coalescing,
// atomic surcharge) and measures the simulator's host-side overhead.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/sim_clock.h"
#include "rdma/fabric.h"
#include "rdma/queue_pair.h"

namespace dhnsw::rdma {
namespace {

struct Rig {
  Fabric fabric;
  RKey rkey = 0;
  Rig() {
    const NodeId node = fabric.AddNode("mem");
    fabric.AddNode("compute");
    rkey = fabric.RegisterMemory(node, 64 << 20).value();
  }
};

void BM_ReadSimulatedLatency(benchmark::State& state) {
  Rig rig;
  const size_t bytes = static_cast<size_t>(state.range(0));
  SimClock clock;
  QueuePair qp(&rig.fabric, &clock);
  AlignedBuffer buf(bytes, 64);
  uint64_t last = 0;
  for (auto _ : state) {
    qp.Read(rig.rkey, 0, buf.span());
    benchmark::DoNotOptimize(buf.data());
  }
  last = clock.now_ns() / std::max<uint64_t>(1, state.iterations());
  state.counters["sim_ns_per_read"] = static_cast<double>(last);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * bytes));
}
BENCHMARK(BM_ReadSimulatedLatency)->Arg(64)->Arg(4096)->Arg(1 << 16)->Arg(1 << 20);

void BM_DoorbellCoalescing(benchmark::State& state) {
  Rig rig;
  const uint32_t wrs = static_cast<uint32_t>(state.range(0));
  SimClock clock;
  QueuePair qp(&rig.fabric, &clock, /*max_doorbell_wrs=*/64);
  std::vector<AlignedBuffer> bufs;
  for (uint32_t i = 0; i < wrs; ++i) bufs.emplace_back(4096, 64);
  for (auto _ : state) {
    for (uint32_t i = 0; i < wrs; ++i) {
      qp.PostRead(rig.rkey, i * 8192, bufs[i].span());
    }
    qp.RingDoorbell();
    Completion c;
    while (qp.PollCompletion(&c)) benchmark::DoNotOptimize(c);
  }
  state.counters["sim_ns_per_batch"] =
      static_cast<double>(clock.now_ns()) / static_cast<double>(state.iterations());
  state.counters["sim_ns_per_wr"] =
      static_cast<double>(clock.now_ns()) /
      static_cast<double>(state.iterations() * wrs);
}
BENCHMARK(BM_DoorbellCoalescing)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_AtomicFaa(benchmark::State& state) {
  Rig rig;
  SimClock clock;
  QueuePair qp(&rig.fabric, &clock);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qp.FetchAdd(rig.rkey, 0, 1));
  }
  state.counters["sim_ns_per_faa"] =
      static_cast<double>(clock.now_ns()) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_AtomicFaa);

void BM_WriteSimulatedLatency(benchmark::State& state) {
  Rig rig;
  const size_t bytes = static_cast<size_t>(state.range(0));
  SimClock clock;
  QueuePair qp(&rig.fabric, &clock);
  AlignedBuffer buf(bytes, 64);
  for (auto _ : state) {
    qp.Write(rig.rkey, 0, buf.span());
  }
  state.counters["sim_ns_per_write"] =
      static_cast<double>(clock.now_ns()) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_WriteSimulatedLatency)->Arg(64)->Arg(1 << 16);

}  // namespace
}  // namespace dhnsw::rdma
