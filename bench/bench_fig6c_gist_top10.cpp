// Reproduces paper Fig. 6(c): latency-recall on GIST-like (960-d), top-10.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dhnsw::bench;
  const BenchConfig config =
      ParseFlags(argc, argv, BenchConfig::ForWorkload(Workload::kGistLike));
  RunLatencyRecallFigure("Fig. 6(c): GIST-like, top-10", config, /*k=*/10);
  return 0;
}
