// Throughput scaling across the compute pool (paper §4 runs 24 instances
// over 3 servers; §1 targets "high-throughput vector query"). The client
// load balancer shards each batch across instances; with independent QPs
// and caches, throughput should scale near-linearly until the shards get so
// small that per-batch fixed costs (metadata refresh, cold loads) dominate.
#include <cstdio>

#include "bench_common.h"
#include "common/stats.h"
#include "core/client_router.h"
#include "dataset/ground_truth.h"

int main(int argc, char** argv) {
  using namespace dhnsw::bench;
  BenchConfig config =
      ParseFlags(argc, argv, BenchConfig::ForWorkload(Workload::kSiftLike));
  config.num_queries = 2000;

  std::printf("==== Throughput scaling over compute instances ====\n");
  dhnsw::Dataset ds = LoadDataset(config);
  dhnsw::DhnswEngine engine = BuildEngine(ds, config);

  std::printf("\n%10s %16s %16s %14s %14s %14s\n", "instances", "batch latency",
              "throughput", "recall", "shard p50", "shard max");
  std::printf("%10s %16s %16s %14s %14s %14s\n", "", "(us)", "(queries/s)", "@10",
              "(us)", "(us)");
  for (size_t instances : {1u, 2u, 4u, 8u, 16u}) {
    // A fresh pool per point (cold caches), all attached to the same region.
    std::vector<std::unique_ptr<dhnsw::ComputeNode>> nodes;
    std::vector<dhnsw::ComputeNode*> pool;
    for (size_t i = 0; i < instances; ++i) {
      nodes.push_back(AttachComputeNode(engine, config, dhnsw::EngineMode::kFull));
      pool.push_back(nodes.back().get());
    }
    dhnsw::ClientRouter router(pool);
    auto result = router.SearchBatch(ds.queries, 10, 32);
    if (!result.ok()) {
      std::fprintf(stderr, "router failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    // Per-shard latency distribution: each shard records into its own
    // recorder/stat (in a real pool each instance aggregates locally), then
    // the shards are Merge()d into a pool-wide view — no re-sort of the
    // combined samples, no double-counting of Welford terms.
    dhnsw::LatencyRecorder pool_latency;
    dhnsw::RunningStat pool_stat;
    for (const dhnsw::BatchBreakdown& b : result.value().per_instance) {
      dhnsw::LatencyRecorder shard_latency;
      dhnsw::RunningStat shard_stat;
      const double shard_us = b.network_us + b.meta_us + b.sub_us + b.deserialize_us;
      shard_latency.Add(shard_us);
      shard_stat.Add(shard_us);
      pool_latency.Merge(shard_latency);
      pool_stat.Merge(shard_stat);
    }
    double recall = dhnsw::MeanRecallAtK(ds, result.value().results, 10);
    std::printf("%10zu %16.1f %16.0f %14.4f %14.1f %14.1f\n", instances,
                result.value().batch_latency_us, result.value().throughput_qps, recall,
                pool_latency.p50(), pool_stat.max());
  }
  std::printf("\n# latency = slowest shard; throughput = batch size / latency.\n");
  return 0;
}
