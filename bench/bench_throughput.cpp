// Throughput scaling across the compute pool (paper §4 runs 24 instances
// over 3 servers; §1 targets "high-throughput vector query"). The client
// load balancer shards each batch across instances; with independent QPs
// and caches, throughput should scale near-linearly until the shards get so
// small that per-batch fixed costs (metadata refresh, cold loads) dominate.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stats.h"
#include "common/timer.h"
#include "core/client_router.h"
#include "dataset/ground_truth.h"

namespace {

// One cell of the pipeline grid: fresh node (cold cache) per repetition,
// best-of-reps wall latency for the full 2000-query batch.
struct PipelinePoint {
  double latency_us = 0;
  double throughput_qps = 0;
  double recall = 0;
  double overlap_ms = 0;  ///< pipeline_overlap_ns from the best rep
};

PipelinePoint MeasurePipeline(dhnsw::DhnswEngine& engine, const dhnsw::Dataset& ds,
                              const dhnsw::bench::BenchConfig& config,
                              uint32_t pipeline_depth, size_t search_threads, int reps) {
  PipelinePoint point;
  double best_us = 0;
  for (int rep = 0; rep < reps; ++rep) {
    auto node = AttachComputeNode(engine, config, dhnsw::EngineMode::kFull);
    node->mutable_options()->pipeline_depth = pipeline_depth;
    node->mutable_options()->search_threads = search_threads;
    dhnsw::WallTimer timer;
    auto result = node->SearchAll(ds.queries, 10, 32);
    const double us = timer.elapsed_us();
    if (!result.ok()) {
      std::fprintf(stderr, "pipeline bench failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    if (std::getenv("DHNSW_BENCH_DIAG") != nullptr) {
      const dhnsw::BatchBreakdown& b = result.value().breakdown;
      std::fprintf(stderr,
                   "diag d=%u t=%zu wall=%.0fus net=%.0f meta=%.0f sub=%.0f deser=%.0f "
                   "overlap=%.0fus loaded=%llu\n",
                   pipeline_depth, search_threads, us, b.network_us, b.meta_us, b.sub_us,
                   b.deserialize_us, b.pipeline_overlap_ns / 1e3,
                   (unsigned long long)b.clusters_loaded);
    }
    if (rep == 0 || us < best_us) {
      best_us = us;
      point.recall = dhnsw::MeanRecallAtK(ds, result.value().results, 10);
      point.overlap_ms =
          static_cast<double>(result.value().breakdown.pipeline_overlap_ns) / 1e6;
    }
  }
  point.latency_us = best_us;
  point.throughput_qps = static_cast<double>(ds.queries.size()) / (best_us / 1e6);
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dhnsw::bench;
  // `--json=PATH` archives the pipeline grid; everything else goes to
  // ParseFlags (which treats unknown keys as fatal).
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      args.push_back(argv[i]);
    }
  }
  BenchConfig config = ParseFlags(static_cast<int>(args.size()), args.data(),
                                  BenchConfig::ForWorkload(Workload::kSiftLike));
  config.num_queries = 2000;

  std::printf("==== Throughput scaling over compute instances ====\n");
  dhnsw::Dataset ds = LoadDataset(config);
  dhnsw::DhnswEngine engine = BuildEngine(ds, config);

  std::printf("\n%10s %16s %16s %14s %14s %14s\n", "instances", "batch latency",
              "throughput", "recall", "shard p50", "shard max");
  std::printf("%10s %16s %16s %14s %14s %14s\n", "", "(us)", "(queries/s)", "@10",
              "(us)", "(us)");
  for (size_t instances : {1u, 2u, 4u, 8u, 16u}) {
    // A fresh pool per point (cold caches), all attached to the same region.
    std::vector<std::unique_ptr<dhnsw::ComputeNode>> nodes;
    std::vector<dhnsw::ComputeNode*> pool;
    for (size_t i = 0; i < instances; ++i) {
      nodes.push_back(AttachComputeNode(engine, config, dhnsw::EngineMode::kFull));
      pool.push_back(nodes.back().get());
    }
    dhnsw::ClientRouter router(pool);
    auto result = router.SearchBatch(ds.queries, 10, 32);
    if (!result.ok()) {
      std::fprintf(stderr, "router failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    // Per-shard latency distribution: each shard records into its own
    // recorder/stat (in a real pool each instance aggregates locally), then
    // the shards are Merge()d into a pool-wide view — no re-sort of the
    // combined samples, no double-counting of Welford terms.
    dhnsw::LatencyRecorder pool_latency;
    dhnsw::RunningStat pool_stat;
    for (const dhnsw::BatchBreakdown& b : result.value().per_instance) {
      dhnsw::LatencyRecorder shard_latency;
      dhnsw::RunningStat shard_stat;
      const double shard_us = b.network_us + b.meta_us + b.sub_us + b.deserialize_us;
      shard_latency.Add(shard_us);
      shard_stat.Add(shard_us);
      pool_latency.Merge(shard_latency);
      pool_stat.Merge(shard_stat);
    }
    double recall = dhnsw::MeanRecallAtK(ds, result.value().results, 10);
    std::printf("%10zu %16.1f %16.0f %14.4f %14.1f %14.1f\n", instances,
                result.value().batch_latency_us, result.value().throughput_qps, recall,
                pool_latency.p50(), pool_stat.max());
  }
  std::printf("\n# latency = slowest shard; throughput = batch size / latency.\n");

  // ---- Pipelined wave execution: depth x threads grid on one instance ----
  // depth=1 is the blocking seed path; depth=2 posts each wave's READs while
  // the previous wave's sub-searches run. The threads=1 vs threads=4 rows at
  // depth=1 also document the persistent-pool fix: per-wave pool construction
  // used to make multi-threaded search SLOWER than single-threaded on the
  // small waves this cache budget produces.
  std::printf("\n==== Pipelined wave execution (single instance, cold cache) ====\n");
  std::printf("\n%8s %10s %16s %16s %10s %14s\n", "depth", "threads", "batch latency",
              "throughput", "recall", "overlap");
  std::printf("%8s %10s %16s %16s %10s %14s\n", "", "", "(us)", "(queries/s)", "@10",
              "(ms wall)");
  constexpr int kReps = 3;
  JsonWriter json;
  PipelinePoint grid[2][2];  // [depth-1][threads index], threads in {1, 4}
  const size_t kThreads[2] = {1, 4};
  for (uint32_t depth : {1u, 2u}) {
    for (size_t ti = 0; ti < 2; ++ti) {
      PipelinePoint p = MeasurePipeline(engine, ds, config, depth, kThreads[ti], kReps);
      grid[depth - 1][ti] = p;
      std::printf("%8u %10zu %16.1f %16.0f %10.4f %14.2f\n", depth, kThreads[ti],
                  p.latency_us, p.throughput_qps, p.recall, p.overlap_ms);
      LabelNic(json.Row("pipeline_grid"), engine)
          .Label("pipeline_depth", std::to_string(depth))
          .Label("search_threads", std::to_string(kThreads[ti]))
          .Field("batch_latency_us", p.latency_us)
          .Field("throughput_qps", p.throughput_qps)
          .Field("recall_at_10", p.recall)
          .Field("pipeline_overlap_ms", p.overlap_ms);
    }
  }
  const double pipeline_speedup =
      grid[1][1].throughput_qps / grid[0][1].throughput_qps;
  const double thread_speedup = grid[0][1].throughput_qps / grid[0][0].throughput_qps;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("\n# pipeline speedup (depth 2 vs 1, threads 4): %.2fx\n", pipeline_speedup);
  std::printf("# thread speedup   (threads 4 vs 1, depth 1):  %.2fx\n", thread_speedup);
  if (cores <= 1) {
    std::printf(
        "# NOTE: only %u CPU core available. The prefetch worker and the\n"
        "# search threads timeslice a single core, so wall-clock overlap\n"
        "# cannot materialize (it shows up as scheduler interleaving overhead\n"
        "# instead); the overlap column only proves the pipeline is active.\n"
        "# Run on >= 2 cores to measure the real latency win.\n",
        cores);
  }
  json.Row("pipeline_summary")
      .Field("pipeline_speedup_d2_vs_d1_t4", pipeline_speedup)
      .Field("thread_speedup_t4_vs_t1_d1", thread_speedup)
      .Field("hardware_threads", static_cast<double>(cores));
  if (!json_path.empty() && !json.WriteFile(json_path)) return 1;
  return 0;
}
