// Bulk index-build benchmark: wall time of the full d-HNSW build pipeline
// (k-means, classification, sub-HNSW construction, PQ encode, serialization)
// as a function of build_threads, with recall@10 measured on the freshly
// built system so speed never silently trades away quality.
//
// Defaults are laptop-scale (100k x 128-d); `--n=1000000` reproduces the 1M
// acceptance run. Speedups are only visible on multi-core hosts — on a
// single-core container every thread count shares one core and the numbers
// mainly validate that the parallel path adds no overhead.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"

namespace {

struct BuildFlags {
  uint32_t n = 100000;
  uint32_t dim = 128;
  uint32_t queries = 100;
  int reps = 1;
  std::vector<size_t> threads = {1, 2, 8};
  bool kmeans = false;
  bool deterministic = false;
  std::string json_path;
};

std::vector<size_t> ParseThreadList(const char* csv) {
  std::vector<size_t> out;
  std::string token;
  for (const char* p = csv;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) out.push_back(static_cast<size_t>(std::stoul(token)));
      token.clear();
      if (*p == '\0') break;
    } else {
      token.push_back(*p);
    }
  }
  return out;
}

BuildFlags ParseBuildFlags(int argc, char** argv) {
  BuildFlags f;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--n=", 4) == 0) {
      f.n = static_cast<uint32_t>(std::stoul(a + 4));
    } else if (std::strncmp(a, "--dim=", 6) == 0) {
      f.dim = static_cast<uint32_t>(std::stoul(a + 6));
    } else if (std::strncmp(a, "--queries=", 10) == 0) {
      f.queries = static_cast<uint32_t>(std::stoul(a + 10));
    } else if (std::strncmp(a, "--reps=", 7) == 0) {
      f.reps = std::stoi(a + 7);
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      f.threads = ParseThreadList(a + 10);
    } else if (std::strcmp(a, "--kmeans") == 0) {
      f.kmeans = true;
    } else if (std::strcmp(a, "--deterministic") == 0) {
      f.deterministic = true;
    } else if (std::strncmp(a, "--json=", 7) == 0) {
      f.json_path = a + 7;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      std::exit(2);
    }
  }
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dhnsw;
  using dhnsw::bench::JsonWriter;
  const BuildFlags flags = ParseBuildFlags(argc, argv);

  std::printf("build bench: n=%u dim=%u queries=%u reps=%d kmeans=%d det=%d "
              "(host has %u hardware thread(s))\n",
              flags.n, flags.dim, flags.queries, flags.reps, flags.kmeans ? 1 : 0,
              flags.deterministic ? 1 : 0, std::thread::hardware_concurrency());

  Dataset ds = MakeSynthetic({.dim = flags.dim, .num_base = flags.n,
                              .num_queries = flags.queries,
                              .num_clusters = std::max(8u, flags.n / 10000),
                              .seed = 20250706});
  ComputeGroundTruth(&ds, 10, Metric::kL2,
                     std::max<size_t>(1, std::thread::hardware_concurrency()));

  JsonWriter json;
  std::printf("%8s %10s %12s %10s %9s\n", "threads", "build_s", "vectors/s",
              "recall@10", "parts");
  for (const size_t threads : flags.threads) {
    double best_seconds = 0.0;
    double recall = 0.0;
    uint32_t partitions = 0;
    for (int rep = 0; rep < std::max(1, flags.reps); ++rep) {
      DhnswConfig config = DhnswConfig::Defaults();
      // Paper scale: R = 500 representatives on 1M; keep partitions ~2k
      // vectors at smaller n so the sub-graphs stay realistic.
      config.meta.num_representatives =
          std::min<uint32_t>(500, std::max<uint32_t>(16, flags.n / 2000));
      if (flags.kmeans) {
        config.meta.selection = RepresentativeSelection::kKmeans;
      }
      config.sub_hnsw = HnswOptions{.M = 16, .ef_construction = 100};
      config.compute.clusters_per_query = 4;
      config.build_threads = threads;
      config.deterministic_build = flags.deterministic;
      config.transport.kind = rdma::TransportKind::kSim;

      WallTimer timer;
      auto engine = DhnswEngine::Build(ds.base, config);
      const double seconds = timer.elapsed_us() / 1e6;
      if (!engine.ok()) {
        std::fprintf(stderr, "build failed: %s\n", engine.status().ToString().c_str());
        return 1;
      }
      if (rep == 0 || seconds < best_seconds) best_seconds = seconds;
      if (rep == 0) {
        partitions = engine.value().num_partitions();
        auto result = engine.value().SearchAll(ds.queries, 10, 128);
        if (!result.ok()) {
          std::fprintf(stderr, "search failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        recall = MeanRecallAtK(ds, result.value().results, 10);
      }
    }
    const double rate = static_cast<double>(flags.n) / best_seconds;
    std::printf("%8zu %10.2f %12.0f %10.4f %9u\n", threads, best_seconds, rate,
                recall, partitions);
    json.Row("build")
        .Label("threads", std::to_string(threads))
        .Label("kmeans", flags.kmeans ? "1" : "0")
        .Label("deterministic", flags.deterministic ? "1" : "0")
        .Field("n", flags.n)
        .Field("dim", flags.dim)
        .Field("build_seconds", best_seconds)
        .Field("vectors_per_sec", rate)
        .Field("recall_at_10", recall)
        .Field("partitions", partitions);
  }

  if (!flags.json_path.empty() && !json.WriteFile(flags.json_path)) return 1;
  return 0;
}
