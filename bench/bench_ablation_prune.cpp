// Ablation A8: adaptive cluster pruning (extension; cf. paper related work
// [12, 43]). Sweeps the prune factor and reports the recall / compute /
// traffic tradeoff: smaller factors skip more routed clusters once a query's
// top-k is full.
#include <cstdio>

#include "bench_common.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"

int main(int argc, char** argv) {
  using namespace dhnsw::bench;
  BenchConfig config =
      ParseFlags(argc, argv, BenchConfig::ForWorkload(Workload::kSiftLike));
  config.num_queries = 1000;
  config.clusters_per_query = 8;  // wide fan-out gives pruning room to help

  std::printf("==== Ablation: adaptive cluster pruning ====\n");
  // Pruning power depends on cluster geometry: the triangle-inequality bound
  // (rep distance minus covering radius) only bites when clusters are
  // compact relative to their spacing. Use a separated-cluster instance —
  // the favourable-but-realistic case (e.g. multi-tenant embedding spaces);
  // on heavily overlapping data (the fig6 generator), radii swallow the
  // bound and pruning correctly never fires.
  dhnsw::Dataset ds = dhnsw::MakeSynthetic(
      {.dim = 64, .num_base = 20000, .num_queries = config.num_queries,
       .num_clusters = 100, .box_half_width = 100.0f, .cluster_stddev = 5.0f,
       .seed = config.seed, .name = "separated"});
  std::printf("# dataset: %s  base=%zu  queries=%zu  dim=%u\n", ds.name.c_str(),
              ds.base.size(), ds.queries.size(), ds.base.dim());
  dhnsw::ComputeGroundTruth(&ds, config.gt_k);
  dhnsw::DhnswEngine engine = BuildEngine(ds, config);

  std::printf("\n%8s %10s %14s %14s %12s %12s\n", "factor", "recall",
              "sub+deser(us/q)", "net(us/q)", "pruned srch", "pruned load");
  // factor 1.0 is the sound triangle-inequality criterion (lossless under
  // L2); factors below 1 trade recall for compute/traffic.
  for (double factor : {0.0, 1.0, 0.8, 0.6, 0.4, 0.2}) {
    dhnsw::ComputeOptions options;
    options.clusters_per_query = config.clusters_per_query;
    options.cache_capacity = static_cast<uint32_t>(
        std::max(1.0, config.cache_fraction * config.num_representatives));
    options.doorbell_batch = config.doorbell_batch;
    options.adaptive_prune_factor = factor;
    dhnsw::ComputeNode node(&engine.fabric(), engine.memory_handle(), options);
    if (!node.Connect().ok()) return 1;

    const SweepPoint p = RunPoint(node, ds, 10, 32);
    std::printf("%8.1f %10.4f %14.3f %14.3f %12lu %12lu\n", factor, p.recall,
                (p.breakdown.sub_us + p.breakdown.deserialize_us) /
                    static_cast<double>(p.breakdown.num_queries),
                p.breakdown.per_query_network_us(),
                static_cast<unsigned long>(p.breakdown.pruned_searches),
                static_cast<unsigned long>(p.breakdown.pruned_loads));
  }
  std::printf("\n# factor 0 = off (paper behaviour); smaller factors prune harder.\n");
  return 0;
}
