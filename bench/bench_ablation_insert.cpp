// Ablation A4: the dynamic-insert path (paper §3.2). Measures
//   - insert cost: round trips per insert (FAA+partner-check ring, WRITE ring),
//   - that queries after inserts still need only ONE read range per cluster
//     (blob + overflow are contiguous by layout),
//   - the shared-overflow capacity behaviour when a group fills up.
#include <cstdio>

#include "bench_common.h"
#include "common/rng.h"

int main(int argc, char** argv) {
  using namespace dhnsw::bench;
  BenchConfig config =
      ParseFlags(argc, argv, BenchConfig::ForWorkload(Workload::kSiftLike));
  config.num_base = 10000;
  config.num_queries = 500;

  std::printf("==== Ablation: dynamic inserts via shared overflow (paper §3.2) ====\n");
  dhnsw::Dataset ds = LoadDataset(config);
  dhnsw::DhnswEngine engine = BuildEngine(ds, config);

  auto node = AttachComputeNode(engine, config, dhnsw::EngineMode::kFull);

  // Baseline query pass (pre-insert).
  const SweepPoint before = RunPoint(*node, ds, 10, 32);

  // Insert a stream of new vectors drawn near existing data.
  dhnsw::Xoshiro256 rng(99);
  const uint32_t kInserts = 500;
  const auto stats_before = node->qp_stats();
  uint32_t ok = 0, capacity_errors = 0;
  for (uint32_t i = 0; i < kInserts; ++i) {
    const size_t src = rng.NextBounded(ds.base.size());
    std::vector<float> v(ds.base[src].begin(), ds.base[src].end());
    for (auto& x : v) x += 0.01f * static_cast<float>(rng.NextGaussian());
    auto receipt = node->Insert(v, static_cast<uint32_t>(ds.base.size() + i));
    if (receipt.ok()) {
      ++ok;
    } else if (receipt.status().code() == dhnsw::StatusCode::kCapacity) {
      ++capacity_errors;
    } else {
      std::fprintf(stderr, "insert failed: %s\n", receipt.status().ToString().c_str());
      return 1;
    }
  }
  const auto delta = node->qp_stats() - stats_before;
  std::printf("\ninserts: %u ok, %u capacity-rejected\n", ok, capacity_errors);
  std::printf("round trips per successful insert: %.2f (expected ~2: FAA ring + WRITE ring)\n",
              static_cast<double>(delta.round_trips) / std::max(1u, ok));
  std::printf("atomics issued: %lu, bytes written: %s\n",
              static_cast<unsigned long>(delta.atomics),
              FormatBytes(delta.bytes_written).c_str());

  // Post-insert query pass: same round-trip profile, slightly more bytes
  // (overflow records ride along each cluster read).
  const SweepPoint after = RunPoint(*node, ds, 10, 32);
  std::printf("\n%-22s %14s %14s %12s\n", "phase", "net(us/q)", "bytes", "RT/query");
  std::printf("%-22s %14.3f %14s %12.4f\n", "before inserts",
              before.breakdown.per_query_network_us(),
              FormatBytes(before.breakdown.bytes_read).c_str(),
              before.breakdown.per_query_round_trips());
  std::printf("%-22s %14.3f %14s %12.4f\n", "after inserts",
              after.breakdown.per_query_network_us(),
              FormatBytes(after.breakdown.bytes_read).c_str(),
              after.breakdown.per_query_round_trips());
  std::printf("\n# contiguous blob+overflow keeps post-insert loads at one READ per cluster.\n");
  return 0;
}
