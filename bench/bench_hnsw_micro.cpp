// Microbenchmarks for the HNSW kernel itself (micro M1): distance kernels,
// graph insert, and search across ef, independent of the disaggregation
// machinery. google-benchmark based.
//
// For JSON output (CI archives this per commit) run with
//   --benchmark_format=json --benchmark_out=hnsw_micro.json
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "dataset/synthetic.h"
#include "index/distance.h"
#include "index/flat_index.h"
#include "index/hnsw.h"

namespace dhnsw {
namespace {

std::vector<float> RandomVec(Xoshiro256& rng, uint32_t dim) {
  std::vector<float> v(dim);
  for (auto& x : v) x = rng.NextFloat() * 100.0f;
  return v;
}

void BM_DistanceL2(benchmark::State& state) {
  const uint32_t dim = static_cast<uint32_t>(state.range(0));
  Xoshiro256 rng(1);
  const auto a = RandomVec(rng, dim), b = RandomVec(rng, dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(L2Sq(a, b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DistanceL2)->Arg(128)->Arg(960);

void BM_DistanceCosine(benchmark::State& state) {
  const uint32_t dim = static_cast<uint32_t>(state.range(0));
  Xoshiro256 rng(2);
  const auto a = RandomVec(rng, dim), b = RandomVec(rng, dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CosineDistance(a, b));
  }
}
BENCHMARK(BM_DistanceCosine)->Arg(128)->Arg(960);

void BM_HnswInsert(benchmark::State& state) {
  const uint32_t dim = 64;
  Xoshiro256 rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    HnswIndex index(dim, {.M = 16, .ef_construction = 100});
    std::vector<std::vector<float>> data;
    for (int i = 0; i < 1000; ++i) data.push_back(RandomVec(rng, dim));
    state.ResumeTiming();
    for (const auto& v : data) index.Add(v);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_HnswInsert)->Unit(benchmark::kMillisecond);

/// args: {ef, dim}. dim 128 (SIFT-like) is the acceptance gate; 64 keeps the
/// historical series comparable, 960 is GIST-like.
void BM_HnswSearch(benchmark::State& state) {
  const uint32_t ef = static_cast<uint32_t>(state.range(0));
  const uint32_t dim = static_cast<uint32_t>(state.range(1));
  const int n = dim >= 960 ? 2000 : 10000;
  Xoshiro256 rng(4);
  HnswIndex index(dim, {.M = 16, .ef_construction = 100});
  for (int i = 0; i < n; ++i) index.Add(RandomVec(rng, dim));
  const auto q = RandomVec(rng, dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Search(q, 10, ef));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HnswSearch)
    ->Args({8, 64})->Args({16, 64})->Args({48, 64})->Args({128, 64})
    ->Args({8, 128})->Args({16, 128})->Args({48, 128})->Args({128, 128})
    ->Args({48, 960});

void BM_FlatSearch(benchmark::State& state) {
  const uint32_t dim = static_cast<uint32_t>(state.range(0));
  Xoshiro256 rng(5);
  FlatIndex index(dim);
  for (int i = 0; i < 10000; ++i) index.Add(RandomVec(rng, dim));
  const auto q = RandomVec(rng, dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Search(q, 10));
  }
}
BENCHMARK(BM_FlatSearch)->Arg(64)->Arg(128);

}  // namespace
}  // namespace dhnsw
