// Scale-out benchmark for the compute pool (DESIGN.md §12). Two experiments
// over N in {1, 2, 4, 8} ComputeNode instances sharing one memory pool:
//
//   A. Capacity: a drain run through the live pool (worker threads,
//      backpressure) gives wall throughput, and a sequential per-node replay
//      of the same deterministic assignment gives MODELED capacity
//      ops / max_n(busy_n) — the throughput an N-core deployment achieves,
//      reported alongside wall because wall cannot scale past the host's
//      core count (CI runs this on small machines). Scaling is sub-linear in
//      the model too: each node has its own cold cache, so N nodes duplicate
//      cluster loads the single node amortized. Recall parity is checked per
//      N via the front-end sharded batch path.
//
//   B. Open-loop latency: the same workload is released at its Poisson
//      arrival times for three target-QPS levels derived from the measured
//      N=1 capacity (0.5x, 1.0x, 2.0x), reporting sojourn p50/p99/p999 and
//      admission drops. Above capacity the pool must shed load (drops), not
//      queue unboundedly — latency stays finite because queues are bounded.
//
// `--json=PATH` archives both grids (default BENCH_scaleout.json, the CI
// artifact). `--ops=K` sizes the schedules; `--read_fraction=F` adds inserts
// to the mix (default 1.0 keeps the engine immutable so every N sees the
// same index and the modeled replay stays side-effect-free).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stats.h"
#include "common/timer.h"
#include "core/compute_pool.h"
#include "core/workload_gen.h"
#include "dataset/ground_truth.h"

namespace {

constexpr size_t kNodeCounts[] = {1, 2, 4, 8};
constexpr uint32_t kEfSearch = 32;

struct PoolFixture {
  std::vector<std::unique_ptr<dhnsw::ComputeNode>> owned;
  std::vector<dhnsw::ComputeNode*> nodes;
  std::unique_ptr<dhnsw::ComputePool> pool;
};

// Fresh nodes (cold caches) per measurement point, mirroring a pool scale-up.
PoolFixture MakePool(dhnsw::DhnswEngine& engine,
                     const dhnsw::bench::BenchConfig& config, size_t n,
                     dhnsw::DispatchPolicy dispatch, uint32_t num_tenants) {
  PoolFixture f;
  for (size_t i = 0; i < n; ++i) {
    f.owned.push_back(
        AttachComputeNode(engine, config, dhnsw::EngineMode::kFull));
    f.nodes.push_back(f.owned.back().get());
  }
  dhnsw::ComputePoolOptions opt;
  opt.dispatch = dispatch;
  opt.k = config.gt_k;
  opt.ef_search = kEfSearch;
  opt.num_tenants = num_tenants;
  f.pool = std::make_unique<dhnsw::ComputePool>(f.nodes, opt);
  return f;
}

dhnsw::WorkloadGenOptions BaseWorkload(const dhnsw::bench::BenchConfig& config,
                                       size_t num_ops, double read_fraction,
                                       size_t num_base) {
  dhnsw::WorkloadGenOptions w;
  w.seed = config.seed;
  w.num_ops = num_ops;
  w.read_fraction = read_fraction;
  w.num_tenants = 4;
  w.num_topics = 32;
  w.first_insert_id = static_cast<uint32_t>(num_base);
  return w;
}

// Modeled capacity: assign ops exactly as DispatchPolicy::kLeastAssigned
// does (argmin cumulative count, ties to the lowest index), then execute
// each node's subsequence to completion on a fresh node, one node at a
// time, through the same per-op path the pool workers use. The bottleneck
// node's busy time bounds the run on an N-core host:
//   modeled_qps = ops / max_n(busy_n).
// Search-only workloads only — replaying inserts would mutate the shared
// region twice.
double ModeledCapacityQps(dhnsw::DhnswEngine& engine,
                          const dhnsw::bench::BenchConfig& config, size_t n,
                          const std::vector<dhnsw::WorkloadOp>& ops) {
  std::vector<uint64_t> assigned(n, 0);
  std::vector<std::vector<const dhnsw::WorkloadOp*>> per_node(n);
  for (const dhnsw::WorkloadOp& op : ops) {
    size_t pick = 0;
    for (size_t i = 1; i < n; ++i) {
      if (assigned[i] < assigned[pick]) pick = i;
    }
    ++assigned[pick];
    per_node[pick].push_back(&op);
  }

  double max_busy_us = 0.0;
  for (size_t i = 0; i < n; ++i) {
    auto node = AttachComputeNode(engine, config, dhnsw::EngineMode::kFull);
    dhnsw::WallTimer timer;
    for (const dhnsw::WorkloadOp* op : per_node[i]) {
      dhnsw::VectorSet one(node->dim());
      one.Append(op->vector);
      auto run = node->SearchBatch(one, 0, 1, config.gt_k, kEfSearch);
      if (!run.ok()) {
        std::fprintf(stderr, "modeled replay failed: %s\n",
                     run.status().ToString().c_str());
        std::exit(1);
      }
    }
    max_busy_us = std::max(max_busy_us, timer.elapsed_us());
  }
  return static_cast<double>(ops.size()) / (max_busy_us / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dhnsw::bench;
  // Bench-local flags come out before ParseFlags (unknown keys are fatal).
  std::string json_path = "BENCH_scaleout.json";
  size_t num_ops = 1500;
  double read_fraction = 1.0;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--ops=", 6) == 0) {
      num_ops = static_cast<size_t>(std::strtoull(argv[i] + 6, nullptr, 10));
    } else if (std::strncmp(argv[i], "--read_fraction=", 16) == 0) {
      read_fraction = std::strtod(argv[i] + 16, nullptr);
    } else {
      args.push_back(argv[i]);
    }
  }
  // Scale-out stresses per-op dispatch (no batch amortization), so the
  // default stand-in is smaller than the batch benches'.
  BenchConfig defaults = BenchConfig::ForWorkload(Workload::kSiftLike);
  defaults.num_base = 8000;
  defaults.num_queries = 500;
  BenchConfig config =
      ParseFlags(static_cast<int>(args.size()), args.data(), defaults);

  std::printf("==== Scale-out: compute pool over one memory pool ====\n");
  dhnsw::Dataset ds = LoadDataset(config);
  dhnsw::DhnswEngine engine = BuildEngine(ds, config);
  JsonWriter json;

  // ---- A. Capacity (wall + modeled) and recall parity ----
  std::printf("\n%8s %12s %12s %12s %12s %10s\n", "nodes", "wall", "modeled",
              "modeled", "efficiency", "recall");
  std::printf("%8s %12s %12s %12s %12s %10s\n", "", "(ops/s)", "(ops/s)",
              "speedup", "(vs N*N1)", "@10");
  double base_qps = 0.0;          // N=1 wall capacity, used for paced levels
  double base_modeled_qps = 0.0;  // N=1 modeled capacity
  double modeled_speedup_n4 = 0.0;
  for (size_t n : kNodeCounts) {
    auto schedule =
        dhnsw::WorkloadGenerator(
            ds.base, BaseWorkload(config, num_ops, read_fraction, ds.base.size()))
            .Generate();
    PoolFixture f = MakePool(engine, config, n,
                             dhnsw::DispatchPolicy::kLeastAssigned, 4);
    dhnsw::PoolRunStats stats =
        f.pool->Run(schedule, dhnsw::PoolRunMode::kDrain);
    if (stats.failed != 0 || stats.dropped() != 0) {
      std::fprintf(stderr, "drain N=%zu: %llu failures, %llu drops\n", n,
                   (unsigned long long)stats.failed,
                   (unsigned long long)stats.dropped());
      return 1;
    }
    const double modeled_qps =
        read_fraction == 1.0
            ? ModeledCapacityQps(engine, config, n, schedule)
            : stats.achieved_qps;  // replay is search-only; fall back to wall
    auto sharded = f.pool->SearchSharded(ds.queries, config.gt_k, kEfSearch);
    if (!sharded.ok()) {
      std::fprintf(stderr, "sharded search failed: %s\n",
                   sharded.status().ToString().c_str());
      return 1;
    }
    const double recall =
        dhnsw::MeanRecallAtK(ds, sharded.value().results, config.gt_k);
    if (n == 1) {
      base_qps = stats.achieved_qps;
      base_modeled_qps = modeled_qps;
    }
    const double modeled_speedup = modeled_qps / base_modeled_qps;
    if (n == 4) modeled_speedup_n4 = modeled_speedup;
    const double efficiency = modeled_speedup / static_cast<double>(n);
    std::printf("%8zu %12.0f %12.0f %11.2fx %12.2f %10.4f\n", n,
                stats.achieved_qps, modeled_qps, modeled_speedup, efficiency,
                recall);
    LabelNic(json.Row("scaleout_capacity"), engine)
        .Label("nodes", std::to_string(n))
        .Field("wall_qps", stats.achieved_qps)
        .Field("modeled_qps", modeled_qps)
        .Field("modeled_speedup_vs_n1", modeled_speedup)
        .Field("scaling_efficiency", efficiency)
        .Field("recall_at_k", recall)
        .Field("ops", static_cast<double>(stats.completed_ok));
  }

  // ---- B. Open-loop latency at target QPS ----
  // Levels are fractions of the measured N=1 wall capacity so the grid
  // stresses the same relative operating points on any machine.
  const double levels[] = {0.5, 1.0, 2.0};
  std::printf("\n%8s %10s %12s %12s %10s %10s %10s %10s\n", "nodes", "level",
              "target", "achieved", "p50", "p99", "p999", "drops");
  std::printf("%8s %10s %12s %12s %10s %10s %10s %10s\n", "", "(xN1)",
              "(ops/s)", "(ops/s)", "(us)", "(us)", "(us)", "");
  for (size_t n : kNodeCounts) {
    for (double level : levels) {
      const double target = base_qps * level;
      dhnsw::WorkloadGenOptions w =
          BaseWorkload(config, num_ops, read_fraction, ds.base.size());
      w.target_qps = target;
      auto schedule = dhnsw::WorkloadGenerator(ds.base, w).Generate();
      PoolFixture f = MakePool(engine, config, n,
                               dhnsw::DispatchPolicy::kLeastLoaded, 4);
      dhnsw::PoolRunStats stats =
          f.pool->Run(schedule, dhnsw::PoolRunMode::kPaced);
      std::printf("%8zu %9.1fx %12.0f %12.0f %10.1f %10.1f %10.1f %10llu\n", n,
                  level, target, stats.achieved_qps, stats.latency_us.p50(),
                  stats.latency_us.p99(), stats.latency_us.percentile(99.9),
                  (unsigned long long)stats.dropped());
      LabelNic(json.Row("scaleout_paced"), engine)
          .Label("nodes", std::to_string(n))
          .Label("level", std::to_string(level))
          .Field("target_qps", target)
          .Field("offered_qps", stats.offered_qps)
          .Field("achieved_qps", stats.achieved_qps)
          .Field("p50_us", stats.latency_us.p50())
          .Field("p99_us", stats.latency_us.p99())
          .Field("p999_us", stats.latency_us.percentile(99.9))
          .Field("dropped", static_cast<double>(stats.dropped()))
          .Field("drop_rate",
                 static_cast<double>(stats.dropped()) /
                     static_cast<double>(stats.submitted));
    }
  }

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("\n# N=4 vs N=1 modeled speedup: %.2fx (%u hardware threads)\n",
              modeled_speedup_n4, cores);
  if (cores < 4) {
    std::printf(
        "# NOTE: fewer than 4 cores — the wall column timeslices pool\n"
        "# workers on a shared core; the modeled column (sequential replay,\n"
        "# bottleneck-node busy time) is the N-core deployment number.\n");
  }
  LabelNic(json.Row("scaleout_summary"), engine)
      .Field("modeled_speedup_n4_vs_n1", modeled_speedup_n4)
      .Field("n1_capacity_qps", base_qps)
      .Field("n1_modeled_qps", base_modeled_qps)
      .Field("hardware_threads", static_cast<double>(cores))
      .Field("read_fraction", read_fraction)
      .Field("ops_per_point", static_cast<double>(num_ops));
  if (!json_path.empty() && !json.WriteFile(json_path)) return 1;
  return 0;
}
