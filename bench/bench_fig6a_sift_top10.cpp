// Reproduces paper Fig. 6(a): latency-recall curves on the SIFT-like
// workload with top-10 queries, efSearch swept 1..48, for naive d-HNSW,
// d-HNSW without doorbell batching, and full d-HNSW.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dhnsw::bench;
  const BenchConfig config =
      ParseFlags(argc, argv, BenchConfig::ForWorkload(Workload::kSiftLike));
  RunLatencyRecallFigure("Fig. 6(a): SIFT-like, top-10", config, /*k=*/10);
  return 0;
}
