// PQ payload trade-off experiment (DESIGN.md "PQ-compressed payloads"):
// the same engine, searched by three compute nodes that differ only in
// ComputeOptions::payload —
//   raw        full blobs cross the wire (the seed behaviour);
//   pq         only the compressed prefix (graph + m-byte codes) is read and
//              candidates are scored by SIMD ADC;
//   pq+rerank  pq, plus exact re-scoring of the top rerank_depth survivors
//              from targeted raw-row READs.
// Reports recall@10 / payload bytes moved / latency per mode over the ef
// sweep on a SIFT-like slice, plus the dim-256 bytes ratio (the >= 8x
// acceptance point: at dim 128 the graph adjacency floor caps the ratio
// near 5-6x; 256-d rows clear 8x with margin).
//
// `--json=PATH` archives the grid (default BENCH_pq.json, the CI artifact).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "dataset/ground_truth.h"
#include "dataset/synthetic.h"

namespace {

using dhnsw::ComputeNode;
using dhnsw::ComputeOptions;
using dhnsw::Dataset;
using dhnsw::DhnswConfig;
using dhnsw::DhnswEngine;
using dhnsw::PayloadMode;
using dhnsw::bench::BenchConfig;
using dhnsw::bench::JsonWriter;
using dhnsw::bench::SweepPoint;

// Synthetic Gaussian data has no inter-dimension correlation for PQ to
// exploit (real SIFT is far more compressible), so the codebook needs fine
// subspaces: m = 32 (4 dims per subquantizer) keeps ADC ordering good enough
// that a 64-deep exact re-rank lands within 0.01 recall of raw. Override
// with --pq_m= / --rerank_depth= to explore the compression-recall frontier.
uint32_t g_pq_m = 32;
uint32_t g_rerank_depth = 64;

DhnswConfig PqEngineConfig(const BenchConfig& config) {
  DhnswConfig dcfg = DhnswConfig::Defaults();
  dcfg.meta.num_representatives = config.num_representatives;
  dcfg.sub_hnsw.M = config.sub_m;
  dcfg.sub_hnsw.ef_construction = config.ef_construction;
  dcfg.compute.clusters_per_query = config.clusters_per_query;
  dcfg.compute.cache_capacity = static_cast<uint32_t>(
      std::max(1.0, config.cache_fraction * config.num_representatives));
  dcfg.compute.doorbell_batch = config.doorbell_batch;
  dcfg.pq.enabled = true;
  dcfg.pq.m = g_pq_m;
  return dcfg;
}

std::unique_ptr<ComputeNode> AttachPayloadNode(DhnswEngine& engine,
                                               const BenchConfig& config,
                                               PayloadMode payload) {
  ComputeOptions options;
  options.clusters_per_query = config.clusters_per_query;
  options.cache_capacity = static_cast<uint32_t>(
      std::max(1.0, config.cache_fraction * config.num_representatives));
  options.doorbell_batch = config.doorbell_batch;
  options.payload = payload;
  options.rerank_depth = g_rerank_depth;
  auto node = std::make_unique<ComputeNode>(&engine.fabric(), engine.memory_handle(),
                                            options);
  const dhnsw::Status st = node->Connect();
  if (!st.ok()) {
    std::fprintf(stderr, "compute connect failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return node;
}

uint64_t PayloadBytes(const dhnsw::BatchBreakdown& b) {
  return b.bytes_read + b.rerank_bytes;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_pq.json";
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--pq_m=", 7) == 0) {
      g_pq_m = static_cast<uint32_t>(std::strtoul(argv[i] + 7, nullptr, 10));
    } else if (std::strncmp(argv[i], "--rerank_depth=", 15) == 0) {
      g_rerank_depth = static_cast<uint32_t>(std::strtoul(argv[i] + 15, nullptr, 10));
    } else {
      rest.push_back(argv[i]);
    }
  }
  BenchConfig defaults = BenchConfig::ForWorkload(dhnsw::bench::Workload::kSiftLike);
  defaults.num_base = 20000;
  defaults.num_queries = 1000;
  const BenchConfig config = dhnsw::bench::ParseFlags(
      static_cast<int>(rest.size()), rest.data(), defaults);

  Dataset ds = dhnsw::bench::LoadDataset(config);
  DhnswEngine engine = [&] {
    auto built = DhnswEngine::Build(ds.base, PqEngineConfig(config));
    if (!built.ok()) {
      std::fprintf(stderr, "engine build failed: %s\n", built.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(built).value();
  }();

  struct Scheme {
    PayloadMode payload;
    const char* name;
  };
  const Scheme schemes[] = {{PayloadMode::kRaw, "raw"},
                            {PayloadMode::kPq, "pq"},
                            {PayloadMode::kPqRerank, "pq+rerank"}};

  JsonWriter json;
  const std::vector<uint32_t> sweep = dhnsw::bench::DefaultEfSweep();
  std::vector<SweepPoint> raw_points;
  for (const Scheme& scheme : schemes) {
    std::printf("\n## payload: %s\n", scheme.name);
    std::printf("%8s %10s %14s %14s %12s %12s\n", "efSearch", "recall",
                "latency(us/q)", "payload(B/q)", "rerank(B/q)", "fallbacks");
    std::vector<SweepPoint> points;
    for (size_t i = 0; i < sweep.size(); ++i) {
      // Fresh node per point: every measurement starts with a cold cache.
      auto node = AttachPayloadNode(engine, config, scheme.payload);
      const SweepPoint p =
          dhnsw::bench::RunPoint(*node, ds, config.gt_k, sweep[i]);
      const double per_query = static_cast<double>(ds.queries.size());
      std::printf("%8u %10.4f %14.2f %14.1f %12.1f %12llu\n", p.ef_search, p.recall,
                  p.latency_us_per_query,
                  static_cast<double>(PayloadBytes(p.breakdown)) / per_query,
                  static_cast<double>(p.breakdown.rerank_bytes) / per_query,
                  static_cast<unsigned long long>(p.breakdown.rerank_fallbacks));
      LabelNic(json.Row("pq_payload_sweep"), engine)
          .Label("payload", scheme.name)
          .Label("dataset", ds.name)
          .Field("ef_search", p.ef_search)
          .Field("recall_at_10", p.recall)
          .Field("latency_us_per_query", p.latency_us_per_query)
          .Field("payload_bytes", static_cast<double>(PayloadBytes(p.breakdown)))
          .Field("rerank_bytes", static_cast<double>(p.breakdown.rerank_bytes))
          .Field("rerank_candidates",
                 static_cast<double>(p.breakdown.rerank_candidates))
          .Field("rerank_fallbacks",
                 static_cast<double>(p.breakdown.rerank_fallbacks));
      points.push_back(p);
    }
    if (scheme.payload == PayloadMode::kRaw) raw_points = points;
    if (scheme.payload != PayloadMode::kRaw && !raw_points.empty()) {
      const SweepPoint& raw = raw_points.back();
      const SweepPoint& here = points.back();
      std::printf("# vs raw @ef=%u: bytes ratio %.2fx, recall delta %+.4f\n",
                  raw.ef_search,
                  static_cast<double>(PayloadBytes(raw.breakdown)) /
                      static_cast<double>(PayloadBytes(here.breakdown)),
                  here.recall - raw.recall);
      json.Row("pq_payload_headline")
          .Label("payload", scheme.name)
          .Field("ef_search", raw.ef_search)
          .Field("bytes_ratio_vs_raw",
                 static_cast<double>(PayloadBytes(raw.breakdown)) /
                     static_cast<double>(PayloadBytes(here.breakdown)))
          .Field("recall_delta_vs_raw", here.recall - raw.recall);
    }
  }

  // Acceptance point: at dim 256 the compressed prefix must move >= 8x fewer
  // payload bytes than raw (dim 128's adjacency floor caps the ratio lower).
  {
    Dataset wide = dhnsw::MakeSynthetic({.dim = 256,
                                         .num_base = 6000,
                                         .num_queries = 200,
                                         .num_clusters = 24,
                                         .seed = config.seed});
    BenchConfig wide_config = config;
    wide_config.num_representatives = 24;
    auto built = DhnswEngine::Build(wide.base, PqEngineConfig(wide_config));
    if (!built.ok()) {
      std::fprintf(stderr, "dim-256 build failed: %s\n", built.status().ToString().c_str());
      return 1;
    }
    DhnswEngine wide_engine = std::move(built).value();
    uint64_t bytes[2] = {0, 0};
    const PayloadMode modes[2] = {PayloadMode::kRaw, PayloadMode::kPq};
    for (int i = 0; i < 2; ++i) {
      auto node = AttachPayloadNode(wide_engine, wide_config, modes[i]);
      auto result = node->SearchAll(wide.queries, 10, 48);
      if (!result.ok()) {
        std::fprintf(stderr, "dim-256 search failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      bytes[i] = PayloadBytes(result.value().breakdown);
    }
    const double ratio = static_cast<double>(bytes[0]) / static_cast<double>(bytes[1]);
    std::printf("\n# dim-256 payload bytes: raw %s, pq %s -> ratio %.2fx\n",
                dhnsw::bench::FormatBytes(bytes[0]).c_str(),
                dhnsw::bench::FormatBytes(bytes[1]).c_str(), ratio);
    json.Row("pq_bytes_ratio_dim256")
        .Field("raw_bytes", static_cast<double>(bytes[0]))
        .Field("pq_bytes", static_cast<double>(bytes[1]))
        .Field("ratio", ratio);
  }

  if (!json_path.empty() && !json.WriteFile(json_path)) return 1;
  std::printf("# wrote %s\n", json_path.c_str());
  return 0;
}
