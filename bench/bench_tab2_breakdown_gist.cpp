// Reproduces paper Table 2: per-query latency breakdown for GIST-like top-1
// at efSearch=48.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace dhnsw::bench;
  const BenchConfig config =
      ParseFlags(argc, argv, BenchConfig::ForWorkload(Workload::kGistLike));
  RunBreakdownTable("Table 2: latency breakdown, GIST-like @1, efSearch=48", config);
  return 0;
}
