// Microbenchmarks for the serialization layer (the deserialize cost is a
// visible component of per-load latency — naive mode pays it per duplicate
// load, which is most of the paper's sub-HNSW column gap).
#include <benchmark/benchmark.h>

#include "common/crc32.h"
#include "common/rng.h"
#include "serialize/cluster_blob.h"
#include "serialize/overflow.h"

namespace dhnsw {
namespace {

Cluster MakeCluster(uint32_t count, uint32_t dim) {
  Xoshiro256 rng(count * 7919 + dim);
  HnswIndex index(dim, {.M = 8, .ef_construction = 60});
  std::vector<uint32_t> gids;
  std::vector<float> v(dim);
  for (uint32_t i = 0; i < count; ++i) {
    for (auto& x : v) x = rng.NextFloat();
    index.Add(v);
    gids.push_back(i);
  }
  return Cluster(0, std::move(index), std::move(gids));
}

void BM_EncodeCluster(benchmark::State& state) {
  const Cluster cluster = MakeCluster(static_cast<uint32_t>(state.range(0)), 128);
  size_t bytes = 0;
  for (auto _ : state) {
    auto blob = EncodeCluster(cluster);
    bytes = blob.size();
    benchmark::DoNotOptimize(blob);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * bytes));
}
BENCHMARK(BM_EncodeCluster)->Arg(100)->Arg(400)->Arg(1600)->Unit(benchmark::kMicrosecond);

void BM_DecodeCluster(benchmark::State& state) {
  const Cluster cluster = MakeCluster(static_cast<uint32_t>(state.range(0)), 128);
  const std::vector<uint8_t> blob = EncodeCluster(cluster);
  for (auto _ : state) {
    auto decoded = DecodeCluster(blob, HnswOptions{});
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * blob.size()));
}
BENCHMARK(BM_DecodeCluster)->Arg(100)->Arg(400)->Arg(1600)->Unit(benchmark::kMicrosecond);

void BM_Crc32c(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)));
  Xoshiro256 rng(3);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * data.size()));
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(1 << 20);

void BM_OverflowAreaDecode(benchmark::State& state) {
  const uint32_t dim = 128;
  const size_t rec = OverflowRecordSize(dim);
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  std::vector<uint8_t> area(rec * n);
  std::vector<float> v(dim, 1.5f);
  for (uint32_t i = 0; i < n; ++i) {
    EncodeOverflowRecord(i, v, std::span<uint8_t>(area).subspan(i * rec, rec));
  }
  for (auto _ : state) {
    auto records = DecodeOverflowArea(area, area.size(), dim);
    benchmark::DoNotOptimize(records);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_OverflowAreaDecode)->Arg(16)->Arg(256);

}  // namespace
}  // namespace dhnsw
