// Microbenchmarks for the serialization layer (the deserialize cost is a
// visible component of per-load latency — naive mode pays it per duplicate
// load, which is most of the paper's sub-HNSW column gap).
#include <benchmark/benchmark.h>

#include "common/crc32.h"
#include "common/rng.h"
#include "serialize/cluster_blob.h"
#include "serialize/overflow.h"

namespace dhnsw {
namespace {

Cluster MakeCluster(uint32_t count, uint32_t dim) {
  Xoshiro256 rng(count * 7919 + dim);
  HnswIndex index(dim, {.M = 8, .ef_construction = 60});
  std::vector<uint32_t> gids;
  std::vector<float> v(dim);
  for (uint32_t i = 0; i < count; ++i) {
    for (auto& x : v) x = rng.NextFloat();
    index.Add(v);
    gids.push_back(i);
  }
  return Cluster(0, std::move(index), std::move(gids));
}

void BM_EncodeCluster(benchmark::State& state) {
  const Cluster cluster = MakeCluster(static_cast<uint32_t>(state.range(0)), 128);
  size_t bytes = 0;
  for (auto _ : state) {
    auto blob = EncodeCluster(cluster);
    bytes = blob.size();
    benchmark::DoNotOptimize(blob);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * bytes));
}
BENCHMARK(BM_EncodeCluster)->Arg(100)->Arg(400)->Arg(1600)->Unit(benchmark::kMicrosecond);

void BM_DecodeCluster(benchmark::State& state) {
  const Cluster cluster = MakeCluster(static_cast<uint32_t>(state.range(0)), 128);
  const std::vector<uint8_t> blob = EncodeCluster(cluster);
  for (auto _ : state) {
    auto decoded = DecodeCluster(blob, HnswOptions{});
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * blob.size()));
}
BENCHMARK(BM_DecodeCluster)->Arg(100)->Arg(400)->Arg(1600)->Unit(benchmark::kMicrosecond);

ProductQuantizer MakePq(uint32_t dim, uint32_t m) {
  Xoshiro256 rng(dim * 31 + m);
  std::vector<float> samples(4096ull * dim);
  for (auto& x : samples) x = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
  auto pq = ProductQuantizer::Train(dim, m, samples, 6, 11);
  if (!pq.ok()) std::abort();
  return std::move(pq).value();
}

void BM_PqEncode(benchmark::State& state) {
  const uint32_t dim = 128;
  const ProductQuantizer pq = MakePq(dim, 8);
  Xoshiro256 rng(5);
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  std::vector<float> rows(static_cast<size_t>(n) * dim);
  for (auto& x : rows) x = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
  std::vector<uint8_t> codes(static_cast<size_t>(n) * pq.m());
  for (auto _ : state) {
    for (uint32_t i = 0; i < n; ++i) {
      pq.Encode(std::span<const float>(rows).subspan(static_cast<size_t>(i) * dim, dim),
                std::span<uint8_t>(codes).subspan(static_cast<size_t>(i) * pq.m(), pq.m()));
    }
    benchmark::DoNotOptimize(codes.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_PqEncode)->Arg(100)->Arg(1600)->Unit(benchmark::kMicrosecond);

void BM_PqDecodeCodes(benchmark::State& state) {
  const uint32_t dim = 128;
  const ProductQuantizer pq = MakePq(dim, 8);
  Xoshiro256 rng(6);
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  std::vector<uint8_t> codes(static_cast<size_t>(n) * pq.m());
  for (auto& c : codes) c = static_cast<uint8_t>(rng.Next());
  std::vector<float> rec(dim);
  for (auto _ : state) {
    for (uint32_t i = 0; i < n; ++i) {
      pq.Decode(std::span<const uint8_t>(codes).subspan(
                    static_cast<size_t>(i) * pq.m(), pq.m()),
                rec);
      benchmark::DoNotOptimize(rec.data());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_PqDecodeCodes)->Arg(100)->Arg(1600)->Unit(benchmark::kMicrosecond);

void BM_DecodePqClusterPrefix(benchmark::State& state) {
  // The payload=pq hot decode: prefix-only blob -> PqCluster.
  const uint32_t dim = 128;
  const uint32_t count = static_cast<uint32_t>(state.range(0));
  const Cluster cluster = MakeCluster(count, dim);
  const ProductQuantizer pq = MakePq(dim, 8);
  std::vector<uint8_t> codes(static_cast<size_t>(count) * pq.m());
  for (uint32_t i = 0; i < count; ++i) {
    pq.Encode(cluster.index.vector(i),
              std::span<uint8_t>(codes).subspan(static_cast<size_t>(i) * pq.m(), pq.m()));
  }
  ClusterPqExtensions ext;
  ext.codes = codes;
  ext.code_m = pq.m();
  uint64_t head = 0;
  const std::vector<uint8_t> blob = EncodeCluster(cluster, ext, &head);
  const std::span<const uint8_t> prefix = std::span<const uint8_t>(blob).first(head);
  if (state.thread_index() == 0) {
    // One-line compressed-vs-raw answer for the bytes-on-the-wire question.
    state.counters["raw_blob_bytes"] = static_cast<double>(blob.size());
    state.counters["pq_prefix_bytes"] = static_cast<double>(head);
    state.counters["wire_ratio"] =
        static_cast<double>(blob.size()) / static_cast<double>(head);
  }
  for (auto _ : state) {
    auto decoded = DecodePqCluster(prefix);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * head);
}
BENCHMARK(BM_DecodePqClusterPrefix)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Unit(benchmark::kMicrosecond);

void BM_Crc32c(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)));
  Xoshiro256 rng(3);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * data.size()));
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(1 << 20);

void BM_OverflowAreaDecode(benchmark::State& state) {
  const uint32_t dim = 128;
  const size_t rec = OverflowRecordSize(dim);
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  std::vector<uint8_t> area(rec * n);
  std::vector<float> v(dim, 1.5f);
  for (uint32_t i = 0; i < n; ++i) {
    EncodeOverflowRecord(i, v, std::span<uint8_t>(area).subspan(i * rec, rec));
  }
  for (auto _ : state) {
    auto records = DecodeOverflowArea(area, area.size(), dim);
    benchmark::DoNotOptimize(records);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_OverflowAreaDecode)->Arg(16)->Arg(256);

}  // namespace
}  // namespace dhnsw
