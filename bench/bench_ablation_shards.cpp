// Ablation A6: memory-pool width. Cluster groups shard round-robin across
// memory instances (paper Fig. 2's memory pool). Per-destination doorbell
// batching means more shards -> more (smaller) rings per batch; payload
// bytes are unchanged. This quantifies the round-trip overhead of spreading
// the index across the pool.
#include <cstdio>

#include "bench_common.h"
#include "dataset/ground_truth.h"

int main(int argc, char** argv) {
  using namespace dhnsw::bench;
  BenchConfig config =
      ParseFlags(argc, argv, BenchConfig::ForWorkload(Workload::kSiftLike));
  config.num_base = 10000;
  config.num_queries = 1000;

  std::printf("==== Ablation: memory-pool shard count ====\n");
  dhnsw::Dataset ds = LoadDataset(config);

  std::printf("\n%8s %12s %14s %14s %10s\n", "shards", "RT/batch", "net(us/q)",
              "bytes", "recall");
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    dhnsw::DhnswConfig dcfg = dhnsw::DhnswConfig::Defaults();
    dcfg.meta.num_representatives = config.num_representatives;
    dcfg.sub_hnsw.M = config.sub_m;
    dcfg.sub_hnsw.ef_construction = config.ef_construction;
    dcfg.compute.clusters_per_query = config.clusters_per_query;
    dcfg.compute.cache_capacity = static_cast<uint32_t>(
        std::max(1.0, config.cache_fraction * config.num_representatives));
    dcfg.compute.doorbell_batch = config.doorbell_batch;
    dcfg.num_memory_nodes = shards;
    auto engine = dhnsw::DhnswEngine::Build(ds.base, dcfg);
    if (!engine.ok()) {
      std::fprintf(stderr, "build failed: %s\n", engine.status().ToString().c_str());
      return 1;
    }
    auto node = AttachComputeNode(engine.value(), config, dhnsw::EngineMode::kFull);
    const SweepPoint p = RunPoint(*node, ds, 10, 32);
    std::printf("%8u %12lu %14.3f %14s %10.4f\n", shards,
                static_cast<unsigned long>(p.breakdown.round_trips),
                p.breakdown.per_query_network_us(),
                FormatBytes(p.breakdown.bytes_read).c_str(), p.recall);
  }
  std::printf("\n# answers are shard-count invariant; only ring counts change.\n");
  return 0;
}
